#include "gen/csv_source.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dema::gen {

namespace {

Status ParseContent(const std::string& content, std::vector<double>* values,
                    std::vector<TimestampUs>* times) {
  std::istringstream in(content);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim trailing CR from Windows line endings.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected `value,timestamp`");
    }
    char* end = nullptr;
    std::string value_str = line.substr(0, comma);
    double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": bad value `" + value_str + "`");
    }
    std::string rest = line.substr(comma + 1);
    size_t comma2 = rest.find(',');
    std::string time_str = comma2 == std::string::npos ? rest : rest.substr(0, comma2);
    errno = 0;
    long long ts = std::strtoll(time_str.c_str(), &end, 10);
    if (end == time_str.c_str() || errno != 0) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": bad timestamp `" + time_str + "`");
    }
    values->push_back(value);
    times->push_back(static_cast<TimestampUs>(ts));
  }
  if (values->empty()) return Status::InvalidArgument("no data rows");
  return Status::OK();
}

}  // namespace

CsvReplaySource::CsvReplaySource(std::vector<double> values,
                                 std::vector<TimestampUs> times, Options options)
    : values_(std::move(values)), times_(std::move(times)), options_(options) {
  pos_ = values_.empty() ? 0 : options_.start_offset % values_.size();
  if (options_.rebase_time && !times_.empty()) {
    TimestampUs base = times_[pos_];
    for (auto& t : times_) t -= base;
    // Rows before the start offset are shifted one full span forward so the
    // wrapped replay stays monotone.
    dataset_span_us_ = 0;
    for (TimestampUs t : times_) dataset_span_us_ = std::max(dataset_span_us_, t);
    dataset_span_us_ += 1;
    for (size_t i = 0; i < pos_; ++i) times_[i] += dataset_span_us_;
    for (auto& t : times_) t += options_.rebase_start_us;
  } else if (!times_.empty()) {
    dataset_span_us_ = 0;
    TimestampUs lo = times_[0], hi = times_[0];
    for (TimestampUs t : times_) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    dataset_span_us_ = hi - lo + 1;
  }
}

Result<CsvReplaySource> CsvReplaySource::Open(const std::string& path,
                                              Options options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromString(buf.str(), options);
}

Result<CsvReplaySource> CsvReplaySource::FromString(const std::string& content,
                                                    Options options) {
  std::vector<double> values;
  std::vector<TimestampUs> times;
  DEMA_RETURN_NOT_OK(ParseContent(content, &values, &times));
  return CsvReplaySource(std::move(values), std::move(times), options);
}

Event CsvReplaySource::Next() {
  Event e;
  e.value = values_[pos_] * options_.scale_rate;
  e.timestamp = times_[pos_] + wrap_offset_us_;
  e.node = options_.node;
  e.seq = next_seq_++;
  ++pos_;
  if (pos_ == values_.size()) {
    pos_ = 0;
    wrap_offset_us_ += dataset_span_us_;
  }
  return e;
}

}  // namespace dema::gen
