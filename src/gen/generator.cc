#include "gen/generator.h"

#include <algorithm>
#include <cmath>

namespace dema::gen {

StreamGenerator::StreamGenerator(GeneratorConfig config,
                                 std::unique_ptr<ValueDistribution> distribution)
    : config_(config),
      distribution_(std::move(distribution)),
      rng_(config.seed),
      next_time_us_(config.start_time_us),
      gap_us_(1e6 / config.event_rate) {}

Result<std::unique_ptr<StreamGenerator>> StreamGenerator::Create(
    GeneratorConfig config) {
  if (!(config.event_rate > 0)) {
    return Status::InvalidArgument("event_rate must be positive");
  }
  if (config.time_jitter < 0 || config.time_jitter >= 1.0) {
    return Status::InvalidArgument("time_jitter must be in [0, 1)");
  }
  if (config.scale_rate == 0) {
    return Status::InvalidArgument("scale_rate must be non-zero");
  }
  DEMA_ASSIGN_OR_RETURN(auto dist, ValueDistribution::Create(config.distribution));
  return std::unique_ptr<StreamGenerator>(
      new StreamGenerator(config, std::move(dist)));
}

Event StreamGenerator::Next() {
  Event e;
  e.value = distribution_->Next(&rng_) * config_.scale_rate;
  e.timestamp = next_time_us_;
  e.node = config_.node;
  e.seq = next_seq_++;

  double gap = gap_us_;
  if (config_.time_jitter > 0) {
    gap *= rng_.Uniform(1.0 - config_.time_jitter, 1.0 + config_.time_jitter);
  }
  // Advance by at least one microsecond so event time strictly increases.
  next_time_us_ += std::max<DurationUs>(1, static_cast<DurationUs>(std::llround(gap)));
  return e;
}

void StreamGenerator::NextBatch(size_t n, std::vector<Event>* out) {
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(Next());
}

std::vector<Event> StreamGenerator::GenerateWindow(TimestampUs window_start_us,
                                                   DurationUs window_len_us) {
  std::vector<Event> out;
  if (next_time_us_ < window_start_us) next_time_us_ = window_start_us;
  TimestampUs end = window_start_us + window_len_us;
  while (next_time_us_ < end) out.push_back(Next());
  return out;
}

}  // namespace dema::gen
