#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "common/rng.h"
#include "gen/generator.h"

namespace dema::gen {

/// \brief Wraps a `StreamGenerator` and delivers its events out of order,
/// with bounded disorder.
///
/// Each event's *delivery* time is its event time plus a uniform delay in
/// [0, max_disorder_us); events come out sorted by delivery time. This is
/// the standard bounded-disorder model: an event can be overtaken by at most
/// `max_disorder_us` of event time, so a watermark held back by that much
/// (allowed lateness) never drops anything.
class DisorderedSource {
 public:
  struct Options {
    /// Upper bound on how far an event can be delayed past its event time.
    DurationUs max_disorder_us = 0;
    /// Seed for the per-event delay draw.
    uint64_t seed = 99;
  };

  /// Wraps \p generator (takes ownership).
  DisorderedSource(std::unique_ptr<StreamGenerator> generator, Options options);

  /// Builds generator + wrapper in one step.
  static Result<std::unique_ptr<DisorderedSource>> Create(
      const GeneratorConfig& config, Options options);

  /// Produces the next event in delivery order, or nullopt once every event
  /// with event time below \p horizon_us was delivered. Successive calls
  /// must use non-decreasing horizons.
  std::optional<Event> NextUpTo(TimestampUs horizon_us);

  /// Convenience: delivers every event with event time below \p horizon_us.
  std::vector<Event> DeliverAll(TimestampUs horizon_us);

  /// Largest event time seen so far in the delivery stream (watermark input:
  /// hold it back by the allowed lateness).
  TimestampUs max_event_time() const { return max_event_time_; }

 private:
  struct Delivery {
    TimestampUs delivery_us;
    Event event;
    bool operator>(const Delivery& o) const {
      // Delivery-time order; ties broken by event identity for determinism.
      if (delivery_us != o.delivery_us) return delivery_us > o.delivery_us;
      return o.event < event;
    }
  };

  std::unique_ptr<StreamGenerator> generator_;
  Options options_;
  Rng rng_;
  std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>> heap_;
  TimestampUs max_event_time_ = 0;
};

}  // namespace dema::gen
