#include "gen/disorder.h"

namespace dema::gen {

DisorderedSource::DisorderedSource(std::unique_ptr<StreamGenerator> generator,
                                   Options options)
    : generator_(std::move(generator)), options_(options), rng_(options.seed) {
  if (options_.max_disorder_us < 0) options_.max_disorder_us = 0;
}

Result<std::unique_ptr<DisorderedSource>> DisorderedSource::Create(
    const GeneratorConfig& config, Options options) {
  DEMA_ASSIGN_OR_RETURN(auto generator, StreamGenerator::Create(config));
  return std::make_unique<DisorderedSource>(std::move(generator), options);
}

std::optional<Event> DisorderedSource::NextUpTo(TimestampUs horizon_us) {
  // The heap can safely release its top once no not-yet-generated event can
  // be delivered earlier: future events have delivery >= their event time
  // >= generator_->next_time_us().
  while (generator_->next_time_us() < horizon_us &&
         (heap_.empty() ||
          heap_.top().delivery_us > generator_->next_time_us())) {
    Event e = generator_->Next();
    DurationUs delay =
        options_.max_disorder_us > 0
            ? rng_.UniformInt(0, options_.max_disorder_us - 1)
            : 0;
    heap_.push(Delivery{e.timestamp + delay, e});
  }
  if (heap_.empty()) return std::nullopt;
  // Events still to come could beat the heap top only if generation has not
  // reached the horizon AND the top's delivery lies beyond the generator's
  // clock — the loop above rules that out.
  Event out = heap_.top().event;
  heap_.pop();
  max_event_time_ = std::max(max_event_time_, out.timestamp);
  return out;
}

std::vector<Event> DisorderedSource::DeliverAll(TimestampUs horizon_us) {
  std::vector<Event> out;
  while (auto e = NextUpTo(horizon_us)) out.push_back(*e);
  return out;
}

}  // namespace dema::gen
