#include "gen/distribution.h"

#include <algorithm>
#include <cmath>

namespace dema::gen {

Result<DistributionKind> DistributionKindFromString(const std::string& name) {
  if (name == "uniform") return DistributionKind::kUniform;
  if (name == "normal") return DistributionKind::kNormal;
  if (name == "exponential") return DistributionKind::kExponential;
  if (name == "zipf") return DistributionKind::kZipf;
  if (name == "sensorwalk") return DistributionKind::kSensorWalk;
  return Status::InvalidArgument("unknown distribution kind: " + name);
}

const char* DistributionKindToString(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kNormal:
      return "normal";
    case DistributionKind::kExponential:
      return "exponential";
    case DistributionKind::kZipf:
      return "zipf";
    case DistributionKind::kSensorWalk:
      return "sensorwalk";
  }
  return "?";
}

namespace {

class UniformDist final : public ValueDistribution {
 public:
  explicit UniformDist(const DistributionParams& p) : params_(p) {}
  double Next(Rng* rng) override { return rng->Uniform(params_.lo, params_.hi); }
  const DistributionParams& params() const override { return params_; }

 private:
  DistributionParams params_;
};

class NormalDist final : public ValueDistribution {
 public:
  explicit NormalDist(const DistributionParams& p) : params_(p) {}
  double Next(Rng* rng) override {
    return rng->Normal(params_.mean, params_.stddev);
  }
  const DistributionParams& params() const override { return params_; }

 private:
  DistributionParams params_;
};

class ExponentialDist final : public ValueDistribution {
 public:
  explicit ExponentialDist(const DistributionParams& p) : params_(p) {}
  double Next(Rng* rng) override {
    return params_.lo + rng->Exponential(params_.lambda);
  }
  const DistributionParams& params() const override { return params_; }

 private:
  DistributionParams params_;
};

// Zipf over ranks 1..n via rejection-inversion (Hörmann & Derflinger); ranks
// are then mapped linearly onto [lo, hi) so the value head sits at lo.
class ZipfDist final : public ValueDistribution {
 public:
  explicit ZipfDist(const DistributionParams& p) : params_(p) {
    n_ = std::max<uint32_t>(1, p.zipf_n);
    s_ = p.zipf_s;
    hx0_ = H(0.5) - 1.0;
    hxn_ = H(static_cast<double>(n_) + 0.5);
    dist_width_ = hx0_ - hxn_;
  }

  double Next(Rng* rng) override {
    uint64_t rank = NextRank(rng);
    double frac = (static_cast<double>(rank) - 1.0) / static_cast<double>(n_);
    return params_.lo + frac * (params_.hi - params_.lo);
  }
  const DistributionParams& params() const override { return params_; }

 private:
  double H(double x) const {
    if (s_ == 1.0) return std::log(x);
    return std::pow(x, 1.0 - s_) / (1.0 - s_);
  }
  double Hinv(double x) const {
    if (s_ == 1.0) return std::exp(x);
    return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
  }
  uint64_t NextRank(Rng* rng) {
    while (true) {
      double u = hx0_ - rng->Uniform(0.0, 1.0) * dist_width_;
      double x = Hinv(u);
      uint64_t k = static_cast<uint64_t>(std::clamp(
          std::round(x), 1.0, static_cast<double>(n_)));
      double kd = static_cast<double>(k);
      if (u >= H(kd + 0.5) - std::pow(kd, -s_)) return k;
    }
  }

  DistributionParams params_;
  uint32_t n_;
  double s_;
  double hx0_, hxn_, dist_width_;
};

class SensorWalkDist final : public ValueDistribution {
 public:
  explicit SensorWalkDist(const DistributionParams& p) : params_(p) {
    pos_ = (p.lo + p.hi) / 2.0;
  }

  double Next(Rng* rng) override {
    double step = rng->Normal(0.0, params_.stddev);
    if (rng->Bernoulli(params_.kick_prob)) {
      // Occasional kick: a player accelerates / the ball is shot.
      step += rng->Normal(0.0, params_.stddev * 20.0);
    }
    pos_ += step;
    // Reflect at the bounds so the walk stays inside the sensor range.
    double lo = params_.lo, hi = params_.hi;
    while (pos_ < lo || pos_ > hi) {
      if (pos_ < lo) pos_ = lo + (lo - pos_);
      if (pos_ > hi) pos_ = hi - (pos_ - hi);
    }
    return pos_;
  }
  const DistributionParams& params() const override { return params_; }

 private:
  DistributionParams params_;
  double pos_;
};

}  // namespace

Result<std::unique_ptr<ValueDistribution>> ValueDistribution::Create(
    const DistributionParams& params) {
  switch (params.kind) {
    case DistributionKind::kUniform:
    case DistributionKind::kZipf:
    case DistributionKind::kSensorWalk:
      if (!(params.hi > params.lo)) {
        return Status::InvalidArgument("distribution requires hi > lo");
      }
      break;
    case DistributionKind::kNormal:
      if (!(params.stddev > 0)) {
        return Status::InvalidArgument("normal requires stddev > 0");
      }
      break;
    case DistributionKind::kExponential:
      if (!(params.lambda > 0)) {
        return Status::InvalidArgument("exponential requires lambda > 0");
      }
      break;
  }
  switch (params.kind) {
    case DistributionKind::kUniform:
      return std::unique_ptr<ValueDistribution>(new UniformDist(params));
    case DistributionKind::kNormal:
      return std::unique_ptr<ValueDistribution>(new NormalDist(params));
    case DistributionKind::kExponential:
      return std::unique_ptr<ValueDistribution>(new ExponentialDist(params));
    case DistributionKind::kZipf:
      if (!(params.zipf_s > 0)) {
        return Status::InvalidArgument("zipf requires zipf_s > 0");
      }
      return std::unique_ptr<ValueDistribution>(new ZipfDist(params));
    case DistributionKind::kSensorWalk:
      if (!(params.stddev > 0)) {
        return Status::InvalidArgument("sensorwalk requires stddev > 0");
      }
      return std::unique_ptr<ValueDistribution>(new SensorWalkDist(params));
  }
  return Status::InvalidArgument("unknown distribution kind");
}

}  // namespace dema::gen
