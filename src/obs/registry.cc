#include "obs/registry.h"

#include <algorithm>

#include "common/json.h"

namespace dema::obs {

namespace {

size_t BucketIndex(uint64_t value) {
  // bit_width(0) == 0, so the value 0 lands in bucket 0 and every other
  // value v in bucket bit_width(v) — exactly the [2^(b-1), 2^b) split.
  return static_cast<size_t>(std::bit_width(value));
}

void AtomicMin(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::PercentileFrom(const uint64_t* buckets, uint64_t count,
                                 uint64_t min, uint64_t max, double p) {
  if (count == 0) return 0;
  // Rank of the requested percentile, 1-based nearest-rank.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count) + 0.5);
  rank = std::clamp<uint64_t>(rank, 1, count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      // Interpolate linearly within the bucket, then clamp to the exact
      // observed range so single-sample and extreme buckets stay truthful.
      double lo = static_cast<double>(BucketLo(b));
      double hi = static_cast<double>(BucketHi(b));
      double frac =
          static_cast<double>(rank - seen) / static_cast<double>(buckets[b]);
      double est = lo + (hi - lo) * frac;
      return std::clamp(est, static_cast<double>(min), static_cast<double>(max));
    }
    seen += buckets[b];
  }
  return static_cast<double>(max);
}

Histogram::Summary Histogram::Summarize() const {
  Summary s;
  uint64_t buckets[kNumBuckets];
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  // Recompute count from the bucket snapshot so percentiles are internally
  // consistent even if records race with this read.
  for (size_t b = 0; b < kNumBuckets; ++b) s.count += buckets[b];
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
  s.p50 = PercentileFrom(buckets, s.count, s.min, s.max, 0.50);
  s.p95 = PercentileFrom(buckets, s.count, s.min, s.max, 0.95);
  s.p99 = PercentileFrom(buckets, s.count, s.min, s.max, 0.99);
  return s;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets);
  size_t highest = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
    if (out[b] != 0) highest = b;
  }
  out.resize(highest + 1);
  return out;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::map<std::string, uint64_t> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->Value();
  return out;
}

std::map<std::string, int64_t> Registry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->Value();
  return out;
}

std::map<std::string, Histogram::Summary> Registry::HistogramSummaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram::Summary> out;
  for (const auto& [name, h] : histograms_) out[name] = h->Summarize();
  return out;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter counters;
  for (const auto& [name, c] : counters_) counters.Field(name, c->Value());
  JsonWriter gauges;
  for (const auto& [name, g] : gauges_) gauges.Field(name, g->Value());
  JsonWriter hists;
  for (const auto& [name, h] : histograms_) {
    Histogram::Summary s = h->Summarize();
    JsonWriter hw;
    hw.Field("count", s.count);
    hw.Field("sum", s.sum);
    hw.Field("min", s.min);
    hw.Field("max", s.max);
    hw.Field("mean", s.mean);
    hw.Field("p50", s.p50);
    hw.Field("p95", s.p95);
    hw.Field("p99", s.p99);
    std::string buckets = "[";
    bool first = true;
    for (uint64_t b : h->BucketCounts()) {
      if (!first) buckets += ',';
      first = false;
      buckets += std::to_string(b);
    }
    buckets += ']';
    hw.RawField("log2_buckets", buckets);
    hists.RawField(name, hw.Finish());
  }
  JsonWriter out;
  out.RawField("counters", counters.Finish());
  out.RawField("gauges", gauges.Finish());
  out.RawField("histograms", hists.Finish());
  return out.Finish();
}

}  // namespace dema::obs
