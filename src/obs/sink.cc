#include "obs/sink.h"

#include <chrono>
#include <cstdio>

#include "common/json.h"
#include "common/logging.h"

namespace dema::obs {

std::string ObsToJson(const Registry& registry, const TraceRecorder* tracer) {
  JsonWriter out;
  out.RawField("metrics", registry.ToJson());
  out.RawField("spans", tracer ? tracer->ToJson() : std::string("[]"));
  return out.Finish();
}

Status WriteObsFile(const std::string& path, const Registry& registry,
                    const TraceRecorder* tracer) {
  std::string json = ObsToJson(registry, tracer);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to metrics file: " + path);
  }
  return Status::OK();
}

PeriodicLogger::PeriodicLogger(const Registry* registry, DurationUs interval_us)
    : registry_(registry) {
  thread_ = std::thread([this, interval_us] { Run(interval_us); });
}

PeriodicLogger::~PeriodicLogger() { Stop(); }

void PeriodicLogger::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicLogger::Run(DurationUs interval_us) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::microseconds(interval_us),
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    LogOnce();
    ticks_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

void PeriodicLogger::LogOnce() {
  std::ostringstream line;
  bool first = true;
  for (const auto& [name, value] : registry_->CounterValues()) {
    if (!first) line << ' ';
    first = false;
    line << name << '=' << value;
  }
  for (const auto& [name, value] : registry_->GaugeValues()) {
    if (!first) line << ' ';
    first = false;
    line << name << '=' << value;
  }
  DEMA_LOG(Info) << "metrics " << line.str();
}

}  // namespace dema::obs
