#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dema::obs {

/// \brief One window's lifecycle through the Dema protocol, as seen from the
/// root: local close → synopsis batch arrival → identification → candidate
/// request → reply → merge/select (emit).
///
/// All timestamps are clock microseconds from the run's `Clock` (steady_clock
/// epoch under `RealClock`, so spans from TCP peers on the same machine stay
/// comparable). A timestamp of 0 means the stage never happened for this
/// window — e.g. `identification_us == 0` for an empty window, or
/// `first_reply_us == 0` when the cut needed no candidate slices.
struct WindowTrace {
  uint64_t window_id = 0;
  uint64_t global_size = 0;       ///< total events across the cluster
  uint64_t synopses = 0;          ///< synopsis batches received
  uint64_t candidate_slices = 0;  ///< slices requested + shipped back
  uint64_t candidate_events = 0;  ///< events inside those slices
  uint64_t replies = 0;           ///< candidate replies received

  uint64_t local_close_us = 0;       ///< latest local close stamp seen
  uint64_t first_synopsis_us = 0;    ///< root receives first synopsis batch
  uint64_t last_synopsis_us = 0;     ///< root receives final synopsis batch
  uint64_t identification_us = 0;    ///< window-cut identification ran
  uint64_t first_reply_us = 0;       ///< root receives first candidate reply
  uint64_t last_reply_us = 0;        ///< root receives final candidate reply
  uint64_t emit_us = 0;              ///< merge/select finished, result emitted
  uint64_t latency_us = 0;           ///< emit - local close (clamped at 0)
  bool clock_skew = false;           ///< close stamp was ahead of root clock
  bool degraded = false;             ///< best-effort emit after retries ran out
};

/// \brief Fixed-capacity ring of the most recent window traces.
///
/// Thread-safe; `Record` is a short critical section (struct copy), cheap
/// relative to the per-window work that produces a trace. When the ring wraps,
/// the oldest spans are dropped — `total_recorded()` still counts them.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);

  void Record(const WindowTrace& trace);

  /// All retained spans, oldest first.
  std::vector<WindowTrace> Snapshot() const;

  /// Spans ever recorded, including any the ring has since dropped.
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

  /// JSON array of span objects, oldest first (schema in
  /// docs/OBSERVABILITY.md).
  std::string ToJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<WindowTrace> ring_;
  size_t next_ = 0;           ///< ring slot the next Record writes
  uint64_t total_ = 0;
};

}  // namespace dema::obs
