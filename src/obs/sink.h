#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/time.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace dema::obs {

/// \brief Full observability dump as one JSON object:
/// `{"metrics": <Registry::ToJson()>, "spans": <TraceRecorder::ToJson()>}`.
/// \p tracer may be null; "spans" is then an empty array.
std::string ObsToJson(const Registry& registry, const TraceRecorder* tracer);

/// \brief Writes `ObsToJson` to \p path (overwriting), e.g. for
/// `demactl ... --metrics-out=<path>`.
Status WriteObsFile(const std::string& path, const Registry& registry,
                    const TraceRecorder* tracer);

/// \brief Background thread that logs every counter and gauge at Info level
/// on a fixed cadence — a poor man's stats page for long-running `serve`
/// processes. Stops on destruction; `Stop()` is idempotent.
class PeriodicLogger {
 public:
  PeriodicLogger(const Registry* registry, DurationUs interval_us);
  ~PeriodicLogger();

  PeriodicLogger(const PeriodicLogger&) = delete;
  PeriodicLogger& operator=(const PeriodicLogger&) = delete;

  void Stop();

  /// Number of times the logger has dumped the registry (for tests).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Run(DurationUs interval_us);
  void LogOnce();

  const Registry* registry_;
  std::atomic<uint64_t> ticks_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dema::obs
