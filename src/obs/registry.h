#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dema::obs {

/// \brief Monotonically increasing counter (thread-safe, relaxed atomics).
///
/// The registry hands out stable pointers, so hot paths cache the pointer
/// once and pay a single relaxed fetch-add per increment.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Last-value instrument that may go up and down (thread-safe).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Log2-bucketed histogram of non-negative integer samples
/// (latencies in microseconds, sizes in bytes).
///
/// Bucket b holds values whose bit width is b, i.e. [2^(b-1), 2^b - 1]
/// (bucket 0 holds the value 0), so 65 buckets cover all of uint64. Records
/// are lock-free relaxed increments; percentile queries interpolate linearly
/// inside the selected bucket, clamped by the exact observed min/max. The
/// estimate error per sample is bounded by the bucket width (a factor of 2),
/// which is plenty for the latency distributions the paper reports while
/// keeping the instrument O(1) memory and wait-free on the record path.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value);

  /// \brief Point-in-time digest of everything recorded so far.
  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  ///< exact
    uint64_t max = 0;  ///< exact
    double mean = 0;
    double p50 = 0;  ///< bucket-interpolated estimate
    double p95 = 0;
    double p99 = 0;
  };
  Summary Summarize() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Bucket counts up to (and including) the highest non-empty bucket.
  std::vector<uint64_t> BucketCounts() const;

  /// Lower bound of bucket \p b (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLo(size_t b) { return b == 0 ? 0 : uint64_t{1} << (b - 1); }
  /// Inclusive upper bound of bucket \p b (0, 1, 3, 7, 15, ...).
  static uint64_t BucketHi(size_t b) {
    return b == 0 ? 0 : (uint64_t{1} << (b - 1)) + ((uint64_t{1} << (b - 1)) - 1);
  }

 private:
  /// p-th percentile estimate over a consistent snapshot of the buckets.
  static double PercentileFrom(const uint64_t* buckets, uint64_t count,
                               uint64_t min, uint64_t max, double p);

  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief Central instrument registry: every metric the system records lives
/// here under a unique name, so one JSON export covers node logic, transport
/// accounting, and run harness alike.
///
/// Names are free-form; the convention used throughout the repo is
/// `component.metric` with optional `{label=value}` suffixes for per-link or
/// per-node instances, e.g. `dema.windows`, `transport.sent.bytes{link=1->0}`,
/// `local.events_ingested{node=2}`.
///
/// Get* creates on first use and always returns the same stable pointer for a
/// name; Find* never creates. All methods are thread-safe; instrument
/// operations themselves are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Snapshot of every counter's current value, keyed by name.
  std::map<std::string, uint64_t> CounterValues() const;
  /// Snapshot of every gauge's current value, keyed by name.
  std::map<std::string, int64_t> GaugeValues() const;
  /// Snapshot of every histogram's summary, keyed by name.
  std::map<std::string, Histogram::Summary> HistogramSummaries() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms carry count/sum/min/max/mean/p50/p95/p99 plus the raw log2
  /// bucket counts (see docs/OBSERVABILITY.md for the schema).
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  // unique_ptr values keep instrument addresses stable across rehashing.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dema::obs
