#include "obs/trace.h"

#include <algorithm>

#include "common/json.h"

namespace dema::obs {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

void TraceRecorder::Record(const WindowTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<WindowTrace> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WindowTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: next_ points at the oldest slot.
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(next_));
  }
  return out;
}

uint64_t TraceRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string TraceRecorder::ToJson() const {
  std::vector<WindowTrace> spans = Snapshot();
  std::string out = "[";
  bool first = true;
  for (const WindowTrace& t : spans) {
    if (!first) out += ',';
    first = false;
    JsonWriter w;
    w.Field("window_id", t.window_id);
    w.Field("global_size", t.global_size);
    w.Field("synopses", t.synopses);
    w.Field("candidate_slices", t.candidate_slices);
    w.Field("candidate_events", t.candidate_events);
    w.Field("replies", t.replies);
    w.Field("local_close_us", t.local_close_us);
    w.Field("first_synopsis_us", t.first_synopsis_us);
    w.Field("last_synopsis_us", t.last_synopsis_us);
    w.Field("identification_us", t.identification_us);
    w.Field("first_reply_us", t.first_reply_us);
    w.Field("last_reply_us", t.last_reply_us);
    w.Field("emit_us", t.emit_us);
    w.Field("latency_us", t.latency_us);
    w.Field("clock_skew", t.clock_skew);
    w.Field("degraded", t.degraded);
    out += w.Finish();
  }
  out += ']';
  return out;
}

}  // namespace dema::obs
