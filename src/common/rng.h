#pragma once

#include <cstdint>
#include <random>

namespace dema {

/// \brief Deterministic random number generator used across the project.
///
/// A thin wrapper over `std::mt19937_64` with convenience draws. Every
/// stochastic component (generators, simulated jitter) takes an explicit seed
/// so that experiments are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential draw with the given rate parameter lambda.
  double Exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }
  /// Bernoulli draw with success probability \p p.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Access to the underlying engine for custom distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dema
