#pragma once

#include <cstdint>
#include <ostream>
#include <tuple>

#include "common/time.h"

namespace dema {

/// Identifies the node a value originated from (data-stream or local node).
using NodeId = uint32_t;

/// \brief A single stream event.
///
/// Mirrors the paper's event model (Section 2.3): an event consists of a
/// value, an event-time timestamp, and an id assigned by the producing
/// data-stream node. The id is split into the producing node and a per-node
/// monotone sequence number so that `(value, timestamp, node, seq)` forms a
/// strict total order — this makes global ranks (and therefore exact
/// quantiles) well defined even in the presence of duplicate values.
struct Event {
  /// Sensor reading / measurement value (the aggregated attribute).
  double value = 0.0;
  /// Event time: when the event was generated at the data-stream node.
  TimestampUs timestamp = 0;
  /// Producing node.
  NodeId node = 0;
  /// Per-node monotone sequence number.
  uint32_t seq = 0;

  /// Total-order comparison key: value first, then timestamp, node, seq.
  friend bool operator<(const Event& a, const Event& b) {
    return std::tie(a.value, a.timestamp, a.node, a.seq) <
           std::tie(b.value, b.timestamp, b.node, b.seq);
  }
  friend bool operator==(const Event& a, const Event& b) {
    return a.value == b.value && a.timestamp == b.timestamp && a.node == b.node &&
           a.seq == b.seq;
  }
  friend bool operator!=(const Event& a, const Event& b) { return !(a == b); }
  friend bool operator<=(const Event& a, const Event& b) { return !(b < a); }
  friend bool operator>(const Event& a, const Event& b) { return b < a; }
  friend bool operator>=(const Event& a, const Event& b) { return !(a < b); }
};

inline std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << "Event{v=" << e.value << ", t=" << e.timestamp << ", n=" << e.node
            << ", s=" << e.seq << "}";
}

/// Number of bytes an event occupies on the (simulated) wire.
inline constexpr uint64_t kEventWireBytes =
    sizeof(double) + sizeof(TimestampUs) + sizeof(NodeId) + sizeof(uint32_t);

}  // namespace dema
