#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace dema {

/// \brief Error category for a failed operation.
///
/// Follows the Arrow/RocksDB convention: library functions that can fail
/// return a `Status` (or `Result<T>`) instead of throwing. `StatusCode::kOk`
/// signals success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kSerializationError,
  kNetworkError,
  kInternal,
  kNotImplemented,
  kCancelled,
};

/// \brief Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that may fail.
///
/// A `Status` is either OK (no allocation, cheap to copy) or carries a code
/// plus a descriptive message. Use the static factories, e.g.
/// `Status::InvalidArgument("gamma must be >= 2")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with \p message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns an OutOfRange status with \p message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a NotFound status with \p message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns an AlreadyExists status with \p message.
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Returns a FailedPrecondition status with \p message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns a ResourceExhausted status with \p message.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Returns a SerializationError status with \p message.
  static Status SerializationError(std::string message) {
    return Status(StatusCode::kSerializationError, std::move(message));
  }
  /// Returns a NetworkError status with \p message.
  static Status NetworkError(std::string message) {
    return Status(StatusCode::kNetworkError, std::move(message));
  }
  /// Returns an Internal status with \p message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a NotImplemented status with \p message.
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  /// Returns a Cancelled status with \p message.
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dema

/// \brief Propagates a non-OK status to the caller.
#define DEMA_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::dema::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)
