#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace dema {

/// Severity of a log record.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// \brief Minimal thread-safe logger writing to stderr.
///
/// Use the `DEMA_LOG(INFO) << ...` macro. The global threshold is controlled
/// with `Logger::SetLevel` (default: Warn, so library code stays quiet in
/// benchmarks unless something is wrong).
class Logger {
 public:
  /// The process-wide logger instance.
  static Logger& Instance();

  /// Sets the minimum severity that gets emitted.
  static void SetLevel(LogLevel level) { Instance().level_ = level; }
  /// Current minimum severity.
  static LogLevel GetLevel() { return Instance().level_; }

  /// Emits one record (internal; use DEMA_LOG).
  void Write(LogLevel level, const char* file, int line, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

/// \brief Stream-style single-record builder (internal; use DEMA_LOG).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logger::Instance().Write(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace dema

/// \brief Emits a log record at the given severity, e.g.
/// `DEMA_LOG(INFO) << "window " << id << " closed";`
#define DEMA_LOG(severity) \
  ::dema::LogMessage(::dema::LogLevel::k##severity, __FILE__, __LINE__)

/// \brief Aborts with a message when \p cond is false (always on, unlike assert).
#define DEMA_CHECK(cond)                                          \
  if (!(cond)) DEMA_LOG(Fatal) << "Check failed: " #cond " "
