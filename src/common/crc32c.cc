#include "common/crc32c.h"

#include <array>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dema {
namespace {

/// Slicing-by-4 lookup tables for the reflected Castagnoli polynomial,
/// generated once at static-init time (256 * 4 u32 entries, 4 KiB).
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

/// Pre-inverted core loop (caller handles the ~crc conjugation).
uint32_t ExtendSoftware(uint32_t crc, const uint8_t* data, size_t size) {
  const Crc32cTables& tb = Tables();
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           static_cast<uint32_t>(data[1]) << 8 |
           static_cast<uint32_t>(data[2]) << 16 |
           static_cast<uint32_t>(data[3]) << 24;
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    data += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *data++) & 0xFF];
  }
  return crc;
}

#if defined(__x86_64__)
/// SSE4.2 `crc32` instruction path. Computes the same reflected Castagnoli
/// CRC as the table loop (the instruction bakes in polynomial 0x1EDC6F41),
/// so frames checksummed by either implementation verify under the other.
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* data,
                                                          size_t size) {
  // Align to 8 bytes so the 64-bit form runs on aligned loads.
  while (size > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *data++);
    --size;
  }
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, data, sizeof(chunk));
    crc64 = _mm_crc32_u64(crc64, chunk);
    data += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *data++);
  }
  return crc;
}

using ExtendFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

ExtendFn ResolveExtend() {
  return __builtin_cpu_supports("sse4.2") ? &ExtendHardware : &ExtendSoftware;
}

uint32_t ExtendDispatch(uint32_t crc, const uint8_t* data, size_t size) {
  static const ExtendFn fn = ResolveExtend();
  return fn(crc, data, size);
}
#else
uint32_t ExtendDispatch(uint32_t crc, const uint8_t* data, size_t size) {
  return ExtendSoftware(crc, data, size);
}
#endif

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const uint8_t* data, size_t size) {
  return ~ExtendDispatch(~crc, data, size);
}

}  // namespace dema
