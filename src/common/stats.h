#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.h"

namespace dema {

/// \brief Streaming summary statistics (Welford's algorithm).
///
/// Tracks count, mean, variance, min, and max of a sequence of doubles in
/// O(1) memory. Not thread-safe; wrap with external synchronization or use
/// one instance per thread and `Merge`.
class OnlineStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const OnlineStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Number of observations.
  uint64_t count() const { return count_; }
  /// Arithmetic mean (0 when empty).
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (0 when fewer than 2 observations).
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Population standard deviation.
  double stddev() const { return std::sqrt(variance()); }
  /// Minimum observation (+inf when empty).
  double min() const { return min_; }
  /// Maximum observation (-inf when empty).
  double max() const { return max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Exact percentile over a buffered sample.
///
/// Stores all observations; `Percentile(p)` sorts lazily. Used for latency
/// reporting where sample counts are modest (one per window).
class PercentileTracker {
 public:
  /// Adds one observation.
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  /// Number of observations.
  size_t count() const { return samples_.size(); }

  /// Exact p-th percentile, p in [0, 1]; 0 when empty.
  double Percentile(double p);

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Clears all samples.
  void Reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// \brief Thread-safe latency recorder in microseconds.
///
/// Each window result records one latency sample; the driver reads the
/// summary at the end of a run.
class LatencyRecorder {
 public:
  /// Records one latency sample.
  void Record(DurationUs latency_us) {
    std::lock_guard<std::mutex> lock(mu_);
    tracker_.Add(static_cast<double>(latency_us));
  }

  /// Summary of the recorded latencies.
  struct Summary {
    uint64_t count = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double max_us = 0;
  };

  /// Computes the summary over everything recorded so far.
  Summary Summarize() {
    std::lock_guard<std::mutex> lock(mu_);
    Summary s;
    s.count = tracker_.count();
    s.mean_us = tracker_.Mean();
    s.p50_us = tracker_.Percentile(0.50);
    s.p95_us = tracker_.Percentile(0.95);
    s.p99_us = tracker_.Percentile(0.99);
    s.max_us = tracker_.Percentile(1.0);
    return s;
  }

 private:
  std::mutex mu_;
  PercentileTracker tracker_;
};

/// \brief Mean percentage error between an approximation and a reference.
///
/// Used by the accuracy experiment (Fig. 7b): accuracy = 1 - MPE, where MPE
/// averages |approx - exact| / |exact| over all windows (windows with a zero
/// reference contribute |approx - exact| instead, to stay defined).
class MpeAccumulator {
 public:
  /// Adds one (exact, approximate) result pair.
  void Add(double exact, double approx);

  /// Mean percentage error in [0, inf); 0 when empty.
  double Mpe() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Accuracy = 1 - MPE (can be negative for terrible approximations).
  double Accuracy() const { return 1.0 - Mpe(); }
  /// Number of pairs added.
  uint64_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace dema
