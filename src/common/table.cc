#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace dema {

Status Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(cells.size()) +
                                   " != header arity " +
                                   std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  auto print_sep = [&] {
    os << '+';
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t i = 0; i < row.size(); ++i) {
      os << ' ' << row[i];
      for (size_t j = row[i].size(); j < widths[i]; ++j) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

namespace {
void CsvEscape(std::ostream& os, const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    os << cell;
    return;
  }
  os << '"';
  for (char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      CsvEscape(os, row[i]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  PrintCsv(out);
  return Status::OK();
}

std::string FmtF(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
    if (pos && pos % 3 == 0) out.push_back(',');
    out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FmtBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string FmtRate(double events_per_sec) {
  char buf[64];
  if (events_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM ev/s", events_per_sec / 1e6);
  } else if (events_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK ev/s", events_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ev/s", events_per_sec);
  }
  return buf;
}

}  // namespace dema
