#include "common/status.h"

namespace dema {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kSerializationError:
      return "SerializationError";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dema
