#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace dema {

/// \brief Minimal streaming JSON object/array writer.
///
/// Enough for machine-readable metric dumps (`demactl --json`, bench CSV
/// sidecars) without an external dependency. Produces compact, valid JSON;
/// strings are escaped per RFC 8259.
class JsonWriter {
 public:
  /// Starts a top-level object.
  JsonWriter() { out_ << '{'; }

  /// Adds a string field.
  JsonWriter& Field(const std::string& key, const std::string& value) {
    Key(key);
    WriteString(value);
    return *this;
  }
  /// Adds a C-string field (disambiguates from the bool overload).
  JsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  /// Adds a numeric field.
  JsonWriter& Field(const std::string& key, double value) {
    Key(key);
    out_ << FormatDouble(value);
    return *this;
  }
  /// Adds an integer field.
  JsonWriter& Field(const std::string& key, uint64_t value) {
    Key(key);
    out_ << value;
    return *this;
  }
  /// Adds an integer field.
  JsonWriter& Field(const std::string& key, int64_t value) {
    Key(key);
    out_ << value;
    return *this;
  }
  /// Adds a boolean field.
  JsonWriter& Field(const std::string& key, bool value) {
    Key(key);
    out_ << (value ? "true" : "false");
    return *this;
  }
  /// Adds a numeric array field.
  JsonWriter& Field(const std::string& key, const std::vector<double>& values) {
    Key(key);
    out_ << '[';
    for (size_t i = 0; i < values.size(); ++i) {
      if (i) out_ << ',';
      out_ << FormatDouble(values[i]);
    }
    out_ << ']';
    return *this;
  }
  /// Adds a nested object field (value must be complete JSON).
  JsonWriter& RawField(const std::string& key, const std::string& json) {
    Key(key);
    out_ << json;
    return *this;
  }

  /// Closes the object and returns the JSON text.
  std::string Finish() {
    out_ << '}';
    return out_.str();
  }

 private:
  void Key(const std::string& key) {
    if (!first_) out_ << ',';
    first_ = false;
    WriteString(key);
    out_ << ':';
  }
  void WriteString(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }
  static std::string FormatDouble(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }

  std::ostringstream out_;
  bool first_ = true;
};

}  // namespace dema
