#pragma once

#include <cstdint>

namespace dema {

/// Event-time / processing-time instant, in microseconds since an arbitrary
/// epoch (the start of the run for simulated streams).
using TimestampUs = int64_t;

/// A span of time in microseconds.
using DurationUs = int64_t;

/// Microseconds per second, for readable conversions.
inline constexpr DurationUs kMicrosPerSecond = 1'000'000;
/// Microseconds per millisecond.
inline constexpr DurationUs kMicrosPerMilli = 1'000;

/// \brief Converts whole seconds to microseconds.
constexpr DurationUs SecondsUs(int64_t seconds) { return seconds * kMicrosPerSecond; }
/// \brief Converts whole milliseconds to microseconds.
constexpr DurationUs MillisUs(int64_t millis) { return millis * kMicrosPerMilli; }
/// \brief Converts microseconds to (fractional) seconds.
constexpr double ToSeconds(DurationUs us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}
/// \brief Converts microseconds to (fractional) milliseconds.
constexpr double ToMillis(DurationUs us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

}  // namespace dema
