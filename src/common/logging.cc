#include "common/logging.h"

#include <cstring>

namespace dema {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const char* file, int line,
                   const std::string& msg) {
  if (level < level_ && level != LogLevel::kFatal) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               msg.c_str());
}

}  // namespace dema
