#pragma once

#include <cstddef>
#include <cstdint>

namespace dema {

/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
///
/// The checksum guarding every TCP frame (see `docs/PROTOCOL.md`). Uses the
/// SSE4.2 `crc32` instruction when the CPU has it (resolved once at first
/// call), falling back to a slicing-by-4 table loop otherwise. Both compute
/// the same polynomial, so the checksum value is identical across build
/// targets and corrupt-frame tests replay deterministically either way.
///
/// `Crc32c(data, n)` is the one-shot form; `ExtendCrc32c` chains over
/// discontiguous regions (header then payload) without copying:
///
///   uint32_t crc = ExtendCrc32c(ExtendCrc32c(0, header, nh), payload, np);
uint32_t ExtendCrc32c(uint32_t crc, const uint8_t* data, size_t size);

inline uint32_t Crc32c(const uint8_t* data, size_t size) {
  return ExtendCrc32c(0, data, size);
}

}  // namespace dema
