#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace dema {

/// \brief Minimal `--key=value` command-line parser shared by the benchmark
/// harnesses and the `demactl` tool.
///
/// Bare flags (`--verbose`) parse as "1". Unknown arguments are ignored so
/// binaries can coexist with framework flags (e.g. google-benchmark's).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  /// Integer flag with default.
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  /// Floating-point flag with default.
  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }
  /// String flag with default.
  std::string GetString(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  /// True when the flag was given (with or without a value).
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Comma-separated list of doubles, e.g. `--quantiles=0.25,0.5,0.75`.
  std::vector<double> GetDoubleList(const std::string& key,
                                    std::vector<double> def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    std::vector<double> out;
    const std::string& s = it->second;
    size_t pos = 0;
    while (pos <= s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      if (comma > pos) out.push_back(std::strtod(s.substr(pos, comma - pos).c_str(),
                                                 nullptr));
      pos = comma + 1;
    }
    return out.empty() ? def : out;
  }

  /// Non-flag arguments (subcommands), in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dema
