#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dema {

/// \brief ASCII table builder for experiment output.
///
/// Benchmark harnesses print paper-style tables with this helper and can also
/// dump the same rows as CSV for plotting. Cells are strings; use the typed
/// `AddRow` overload or `Fmt*` helpers for numbers.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends a row; must have the same arity as the headers.
  Status AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns to \p os.
  void Print(std::ostream& os) const;

  /// Renders the table as CSV (headers + rows) to \p os.
  void PrintCsv(std::ostream& os) const;

  /// Writes the CSV rendering to \p path, creating parent-less files only.
  Status WriteCsv(const std::string& path) const;

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double with \p decimals fraction digits.
std::string FmtF(double v, int decimals = 2);
/// \brief Formats a count with thousands separators, e.g. "1,234,567".
std::string FmtCount(uint64_t v);
/// \brief Formats a byte count human-readably, e.g. "1.21 MiB".
std::string FmtBytes(uint64_t bytes);
/// \brief Formats an events/second rate, e.g. "3.2M ev/s".
std::string FmtRate(double events_per_sec);

}  // namespace dema
