#include "common/stats.h"

#include <cmath>

namespace dema {

double PercentileTracker::Percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 1.0) return samples_.back();
  // Nearest-rank with linear interpolation between adjacent order statistics.
  double idx = p * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(idx));
  size_t hi = static_cast<size_t>(std::ceil(idx));
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double PercentileTracker::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

void MpeAccumulator::Add(double exact, double approx) {
  double err;
  if (exact != 0.0) {
    err = std::abs(approx - exact) / std::abs(exact);
  } else {
    err = std::abs(approx - exact);
  }
  sum_ += err;
  ++count_;
}

}  // namespace dema
