#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dema {

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result<T>`. Construct implicitly from a `T` (success) or
/// from a non-OK `Status` (failure). Access the value with `ValueOrDie()` /
/// `operator*` after checking `ok()`, or move it out with `MoveValueUnsafe()`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a failed result from a non-OK status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result must not hold an OK status");
  }

  /// True iff this result holds a value.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value; must only be called when `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// Returns the held value (mutable); must only be called when `ok()`.
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  /// Moves the held value out; must only be called when `ok()`.
  T MoveValueUnsafe() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Shorthand for `ValueOrDie()`.
  const T& operator*() const& { return ValueOrDie(); }
  /// Shorthand for `ValueOrDie()`.
  T& operator*() & { return ValueOrDie(); }
  /// Member access into the held value.
  const T* operator->() const { return &ValueOrDie(); }
  /// Member access into the held value.
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace dema

/// \brief Assigns the value of a `Result` expression to `lhs`, or propagates
/// the error status to the caller.
#define DEMA_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto DEMA_CONCAT_(res_, __LINE__) = (rexpr);         \
  if (!DEMA_CONCAT_(res_, __LINE__).ok())              \
    return DEMA_CONCAT_(res_, __LINE__).status();      \
  lhs = std::move(DEMA_CONCAT_(res_, __LINE__)).MoveValueUnsafe()

#define DEMA_CONCAT_IMPL_(a, b) a##b
#define DEMA_CONCAT_(a, b) DEMA_CONCAT_IMPL_(a, b)
