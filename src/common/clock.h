#pragma once

#include <atomic>
#include <chrono>

#include "common/time.h"

namespace dema {

/// \brief Source of processing time.
///
/// Two implementations: `RealClock` (monotonic wall clock, for threaded runs
/// and latency measurement) and `VirtualClock` (manually advanced, for
/// deterministic tests and the synchronous driver).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since this clock's epoch.
  virtual TimestampUs NowUs() const = 0;
};

/// \brief Monotonic wall clock; epoch is the construction instant.
class RealClock final : public Clock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}

  TimestampUs NowUs() const override {
    auto d = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// \brief Manually advanced clock for deterministic simulation.
///
/// Thread-safe: `AdvanceUs`/`SetUs` may race with `NowUs`.
class VirtualClock final : public Clock {
 public:
  /// Starts at \p start_us (default 0).
  explicit VirtualClock(TimestampUs start_us = 0) : now_us_(start_us) {}

  TimestampUs NowUs() const override { return now_us_.load(std::memory_order_acquire); }

  /// Moves the clock forward by \p delta_us.
  void AdvanceUs(DurationUs delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_acq_rel);
  }
  /// Sets the clock to an absolute instant.
  void SetUs(TimestampUs t) { now_us_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimestampUs> now_us_;
};

}  // namespace dema
