#pragma once

#include <atomic>
#include <chrono>

#include "common/time.h"

namespace dema {

/// \brief Source of processing time.
///
/// Two implementations: `RealClock` (monotonic wall clock, for threaded runs
/// and latency measurement) and `VirtualClock` (manually advanced, for
/// deterministic tests and the synchronous driver).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since this clock's epoch.
  virtual TimestampUs NowUs() const = 0;
};

/// \brief Monotonic wall clock.
///
/// Uses `steady_clock`'s native epoch rather than the construction instant:
/// every process on a machine shares it, so latency stamps exchanged between
/// TCP-transport processes (SynopsisBatch::close_time_us) stay comparable no
/// matter when each process started. Clock values are only ever subtracted,
/// never interpreted as absolute times.
class RealClock final : public Clock {
 public:
  TimestampUs NowUs() const override {
    auto d = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }
};

/// \brief Manually advanced clock for deterministic simulation.
///
/// Thread-safe: `AdvanceUs`/`SetUs` may race with `NowUs`.
class VirtualClock final : public Clock {
 public:
  /// Starts at \p start_us (default 0).
  explicit VirtualClock(TimestampUs start_us = 0) : now_us_(start_us) {}

  TimestampUs NowUs() const override { return now_us_.load(std::memory_order_acquire); }

  /// Moves the clock forward by \p delta_us.
  void AdvanceUs(DurationUs delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_acq_rel);
  }
  /// Sets the clock to an absolute instant.
  void SetUs(TimestampUs t) { now_us_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimestampUs> now_us_;
};

}  // namespace dema
