#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/event.h"
#include "net/codec.h"
#include "net/serializer.h"
#include "stream/sorted_buffer.h"
#include "stream/window.h"

namespace dema::stream {

/// \brief A closed window's contents, as emitted by `WindowManager`.
///
/// `sorted_events` obeys the global event order unless the manager runs in
/// defer-sort mode, in which case `is_sorted` is false and the consumer owns
/// the sort (typically on an executor worker).
struct ClosedWindow {
  WindowId id = 0;
  std::vector<Event> sorted_events;
  bool is_sorted = true;
};

/// \brief Event-time window state machine for one node (tumbling or
/// sliding).
///
/// Routes events into per-window sorted buffers — one buffer per covering
/// window when windows overlap — and closes windows when the event-time
/// watermark passes their end. Late events — event time below the current
/// watermark — are counted and dropped, matching the paper's in-order
/// evaluation setup while keeping the accounting visible.
class WindowManager {
 public:
  /// Creates a manager for tumbling windows of \p window_len_us.
  explicit WindowManager(DurationUs window_len_us,
                         SortMode sort_mode = SortMode::kSortOnClose)
      : WindowManager(WindowSpec{window_len_us, 0}, sort_mode) {}

  /// Creates a manager for the given window shape.
  explicit WindowManager(WindowSpec spec,
                         SortMode sort_mode = SortMode::kSortOnClose)
      : assigner_(spec), sort_mode_(sort_mode) {}

  /// Routes one event into its window. Returns false iff the event was late
  /// (its window already closed) and therefore dropped.
  bool OnEvent(const Event& e);

  /// Advances the event-time watermark to \p watermark_us and returns every
  /// window whose end is <= the watermark, in window order, with events
  /// sorted. The watermark never moves backwards.
  std::vector<ClosedWindow> AdvanceWatermark(TimestampUs watermark_us);

  /// Closes and returns all remaining windows (end of stream).
  std::vector<ClosedWindow> Flush();

  /// Defer-sort mode: closed windows come back in raw buffer order with
  /// `ClosedWindow::is_sorted` telling the consumer whether a sort is still
  /// owed. Lets an executor-backed node move the close-time sort off the
  /// ingest thread. Off by default (windows come back sorted).
  void set_defer_sort(bool defer) { defer_sort_ = defer; }

  /// Current event-time watermark.
  TimestampUs watermark_us() const { return watermark_us_; }

  /// Number of late (dropped) events so far.
  uint64_t late_events() const { return late_events_; }

  /// Number of currently open windows.
  size_t open_windows() const { return open_.size(); }

  /// Events buffered across all open windows.
  uint64_t buffered_events() const;

  /// The window assigner in use.
  const SlidingWindowAssigner& assigner() const { return assigner_; }

  /// Serializes the watermark, late-event counter, and every open window's
  /// buffered events (checkpointing support).
  void SerializeTo(net::Writer* w) const;

  /// Replaces this manager's state with a `SerializeTo` snapshot. The window
  /// shape and sort mode must match the snapshot producer's configuration.
  Status RestoreFrom(net::Reader* r);

 private:
  /// Closes one buffer honoring the defer-sort mode.
  ClosedWindow CloseBuffer(WindowId id, SortedWindowBuffer* buf);

  SlidingWindowAssigner assigner_;
  SortMode sort_mode_;
  bool defer_sort_ = false;
  std::map<WindowId, SortedWindowBuffer> open_;
  std::vector<WindowId> assign_scratch_;
  TimestampUs watermark_us_ = 0;
  uint64_t late_events_ = 0;
};

}  // namespace dema::stream
