#pragma once

#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/time.h"
#include "net/message.h"

namespace dema::stream {

using net::WindowId;

/// \brief Maps event times onto time-based tumbling windows.
///
/// Window ids are dense: id = floor(timestamp / length), so every node
/// assigns the same id to the same wall-time span — this is what lets the
/// root align local windows into a global window without coordination.
class TumblingWindowAssigner {
 public:
  /// Creates an assigner for windows of \p length_us (must be positive).
  explicit TumblingWindowAssigner(DurationUs length_us) : length_us_(length_us) {}

  /// The window \p t belongs to.
  WindowId AssignWindow(TimestampUs t) const {
    return static_cast<WindowId>(t / length_us_);
  }

  /// Inclusive start time of window \p id.
  TimestampUs WindowStart(WindowId id) const {
    return static_cast<TimestampUs>(id) * length_us_;
  }

  /// Exclusive end time of window \p id.
  TimestampUs WindowEnd(WindowId id) const { return WindowStart(id) + length_us_; }

  /// The configured window lifespan.
  DurationUs length_us() const { return length_us_; }

 private:
  DurationUs length_us_;
};

/// \brief Shape of a time-based window: lifespan plus slide step.
///
/// `slide_us == length_us` (or 0, normalized on construction) is a tumbling
/// window — the paper's focus; smaller slides give overlapping sliding
/// windows (Section 2.1), which the substrate and Dema also support. Window
/// `id` covers `[id·slide, id·slide + length)`.
struct WindowSpec {
  DurationUs length_us = kMicrosPerSecond;
  DurationUs slide_us = 0;  // 0 = tumbling (normalized to length)

  /// Normalized slide (never 0, never > length).
  DurationUs slide() const {
    return slide_us <= 0 || slide_us > length_us ? length_us : slide_us;
  }
  /// True when the spec degenerates to tumbling windows.
  bool IsTumbling() const { return slide() == length_us; }
};

/// \brief Maps event times onto (possibly overlapping) sliding windows.
class SlidingWindowAssigner {
 public:
  explicit SlidingWindowAssigner(WindowSpec spec)
      : length_us_(spec.length_us), slide_us_(spec.slide()) {}

  /// Appends every window id covering \p t to \p out (ascending). A point
  /// belongs to at most length/slide windows.
  void AssignWindows(TimestampUs t, std::vector<WindowId>* out) const {
    // Largest window starting at or before t ...
    WindowId last = static_cast<WindowId>(t / slide_us_);
    // ... down to the earliest window still covering t.
    TimestampUs earliest_start = t - (length_us_ - 1);
    WindowId first = earliest_start <= 0
                         ? 0
                         : static_cast<WindowId>((earliest_start + slide_us_ - 1) /
                                                 slide_us_);
    for (WindowId id = first; id <= last; ++id) out->push_back(id);
  }

  /// Inclusive start time of window \p id.
  TimestampUs WindowStart(WindowId id) const {
    return static_cast<TimestampUs>(id) * slide_us_;
  }
  /// Exclusive end time of window \p id.
  TimestampUs WindowEnd(WindowId id) const { return WindowStart(id) + length_us_; }

  /// Exclusive upper bound of window ids fully closed at \p watermark (every
  /// id below it has end <= watermark).
  WindowId ClosedUpTo(TimestampUs watermark_us) const {
    if (watermark_us < length_us_) return 0;
    return static_cast<WindowId>((watermark_us - length_us_) / slide_us_) + 1;
  }

  DurationUs length_us() const { return length_us_; }
  DurationUs slide_us() const { return slide_us_; }

 private:
  DurationUs length_us_;
  DurationUs slide_us_;
};

}  // namespace dema::stream
