#include "stream/window_manager.h"

namespace dema::stream {

bool WindowManager::OnEvent(const Event& e) {
  if (e.timestamp < watermark_us_) {
    ++late_events_;
    return false;
  }
  assign_scratch_.clear();
  assigner_.AssignWindows(e.timestamp, &assign_scratch_);
  for (WindowId id : assign_scratch_) {
    auto it = open_.find(id);
    if (it == open_.end()) {
      it = open_.emplace(id, SortedWindowBuffer(sort_mode_)).first;
    }
    it->second.Add(e);
  }
  return true;
}

ClosedWindow WindowManager::CloseBuffer(WindowId id, SortedWindowBuffer* buf) {
  if (!defer_sort_) return ClosedWindow{id, buf->TakeSorted(), true};
  bool is_sorted = true;
  std::vector<Event> events = buf->TakeRaw(&is_sorted);
  return ClosedWindow{id, std::move(events), is_sorted};
}

std::vector<ClosedWindow> WindowManager::AdvanceWatermark(TimestampUs watermark_us) {
  std::vector<ClosedWindow> closed;
  if (watermark_us <= watermark_us_) return closed;
  watermark_us_ = watermark_us;
  auto it = open_.begin();
  while (it != open_.end() && assigner_.WindowEnd(it->first) <= watermark_us_) {
    closed.push_back(CloseBuffer(it->first, &it->second));
    it = open_.erase(it);
  }
  return closed;
}

std::vector<ClosedWindow> WindowManager::Flush() {
  std::vector<ClosedWindow> closed;
  for (auto& [id, buf] : open_) {
    closed.push_back(CloseBuffer(id, &buf));
  }
  open_.clear();
  return closed;
}

void WindowManager::SerializeTo(net::Writer* w) const {
  w->PutI64(watermark_us_);
  w->PutU64(late_events_);
  w->PutU32(static_cast<uint32_t>(open_.size()));
  for (const auto& [id, buf] : open_) {
    w->PutU64(id);
    std::vector<Event> events;
    events.reserve(buf.size());
    buf.ForEach([&](const Event& e) { events.push_back(e); });
    net::EncodeEvents(w, events, net::EventCodec::kCompact);
  }
}

Status WindowManager::RestoreFrom(net::Reader* r) {
  TimestampUs watermark = 0;
  uint64_t late = 0;
  uint32_t num_windows = 0;
  DEMA_RETURN_NOT_OK(r->GetI64(&watermark));
  DEMA_RETURN_NOT_OK(r->GetU64(&late));
  DEMA_RETURN_NOT_OK(r->GetU32(&num_windows));
  open_.clear();
  watermark_us_ = watermark;
  late_events_ = late;
  for (uint32_t i = 0; i < num_windows; ++i) {
    uint64_t id = 0;
    DEMA_RETURN_NOT_OK(r->GetU64(&id));
    std::vector<Event> events;
    DEMA_RETURN_NOT_OK(net::DecodeEvents(r, &events));
    SortedWindowBuffer buf(sort_mode_);
    for (const Event& e : events) buf.Add(e);
    open_.emplace(static_cast<WindowId>(id), std::move(buf));
  }
  return Status::OK();
}

uint64_t WindowManager::buffered_events() const {
  uint64_t n = 0;
  for (const auto& [id, buf] : open_) {
    (void)id;
    n += buf.size();
  }
  return n;
}

}  // namespace dema::stream
