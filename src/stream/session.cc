#include "stream/session.h"

#include <algorithm>

namespace dema::stream {

bool SessionWindowManager::OnEvent(const Event& e) {
  if (e.timestamp < watermark_us_) {
    ++late_events_;
    return false;
  }
  // The event extends any session whose activity range touches
  // [e.timestamp - gap, e.timestamp + gap]; merging can chain sessions.
  TimestampUs start = e.timestamp;
  TimestampUs last = e.timestamp;
  SortedWindowBuffer merged(sort_mode_);
  merged.Add(e);

  // Find the first session that could interact: the last one starting at or
  // before the event, plus everything after until the gap is exceeded.
  auto it = open_.lower_bound(start);
  if (it != open_.begin()) {
    auto prev = std::prev(it);
    // prev starts before the event; it interacts iff its last event is
    // within gap of the new event.
    if (e.timestamp <= prev->second.last_us + gap_us_) it = prev;
  }
  while (it != open_.end() && it->first <= last + gap_us_) {
    // Merge this session into the new one.
    start = std::min(start, it->first);
    last = std::max(last, it->second.last_us);
    std::vector<Event> events = it->second.buffer.TakeSorted();
    for (const Event& old : events) merged.Add(old);
    it = open_.erase(it);
  }
  OpenSession session;
  session.last_us = last;
  session.buffer = std::move(merged);
  open_.emplace(start, std::move(session));
  return true;
}

std::vector<ClosedSession> SessionWindowManager::AdvanceWatermark(
    TimestampUs watermark_us) {
  std::vector<ClosedSession> closed;
  if (watermark_us <= watermark_us_) return closed;
  watermark_us_ = watermark_us;
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_us + gap_us_ <= watermark_us_) {
      closed.push_back(ClosedSession{it->first, it->second.last_us,
                                     it->second.buffer.TakeSorted()});
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(closed.begin(), closed.end(),
            [](const ClosedSession& a, const ClosedSession& b) {
              return a.start_us < b.start_us;
            });
  return closed;
}

std::vector<ClosedSession> SessionWindowManager::Flush() {
  std::vector<ClosedSession> closed;
  for (auto& [start, session] : open_) {
    closed.push_back(
        ClosedSession{start, session.last_us, session.buffer.TakeSorted()});
  }
  open_.clear();
  return closed;
}

}  // namespace dema::stream
