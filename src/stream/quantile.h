#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/result.h"

namespace dema::stream {

/// \brief 1-based rank of the q-quantile in a dataset of \p n elements.
///
/// The paper's definition (Section 3.1): `Pos(q) = ⌈q · l_G⌉` for
/// q ∈ (0, 1], clamped into [1, n]. The median is Pos(0.5).
inline uint64_t QuantileRank(double q, uint64_t n) {
  if (n == 0) return 0;
  uint64_t pos = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  return std::clamp<uint64_t>(pos, 1, n);
}

/// \brief Exact q-quantile of a *sorted* event sequence (oracle and root-side
/// final selection). Fails on an empty input or q outside (0, 1].
Result<Event> ExactQuantileSorted(const std::vector<Event>& sorted, double q);

/// \brief Exact q-quantile of an unsorted value set (test oracle). Uses
/// nth_element; fails on an empty input or q outside (0, 1].
Result<double> ExactQuantileValues(std::vector<double> values, double q);

}  // namespace dema::stream
