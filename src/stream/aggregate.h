#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "common/event.h"
#include "common/result.h"

namespace dema::stream {

/// \brief The aggregation-function taxonomy of the paper's Section 2.2
/// (after Jesus et al.): self-decomposable and decomposable functions admit
/// partial aggregation at local nodes; non-decomposable ones (median,
/// quantile — Dema's subject) do not.
///
/// Decomposable functions follow the standard lift/combine/lower
/// formulation: `Lift` turns one event into a partial aggregate, `Combine`
/// merges two partials, `Lower` extracts the final value. Local nodes ship
/// one partial per window; any combine tree yields the exact result.
///
/// Each aggregate below is a small value type:
///   static Partial Lift(const Event&);
///   static Partial Combine(const Partial&, const Partial&);
///   static double Lower(const Partial&);
///   static Partial Identity();

/// \brief Sum of event values (self-decomposable).
struct SumAggregate {
  struct Partial {
    double sum = 0;
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event& e) { return {e.value}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    return {a.sum + b.sum};
  }
  static double Lower(const Partial& p) { return p.sum; }
};

/// \brief Event count (self-decomposable).
struct CountAggregate {
  struct Partial {
    uint64_t count = 0;
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event&) { return {1}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    return {a.count + b.count};
  }
  static double Lower(const Partial& p) { return static_cast<double>(p.count); }
};

/// \brief Maximum value (self-decomposable).
struct MaxAggregate {
  struct Partial {
    double max = -std::numeric_limits<double>::infinity();
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event& e) { return {e.value}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    return {std::max(a.max, b.max)};
  }
  static double Lower(const Partial& p) { return p.max; }
};

/// \brief Minimum value (self-decomposable).
struct MinAggregate {
  struct Partial {
    double min = std::numeric_limits<double>::infinity();
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event& e) { return {e.value}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    return {std::min(a.min, b.min)};
  }
  static double Lower(const Partial& p) { return p.min; }
};

/// \brief Arithmetic mean (decomposable: sum + count).
struct AverageAggregate {
  struct Partial {
    double sum = 0;
    uint64_t count = 0;
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event& e) { return {e.value, 1}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    return {a.sum + b.sum, a.count + b.count};
  }
  static double Lower(const Partial& p) {
    return p.count ? p.sum / static_cast<double>(p.count) : 0;
  }
};

/// \brief Population variance (decomposable via Chan et al. pairwise merge).
struct VarianceAggregate {
  struct Partial {
    uint64_t count = 0;
    double mean = 0;
    double m2 = 0;
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event& e) { return {1, e.value, 0}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    if (a.count == 0) return b;
    if (b.count == 0) return a;
    Partial out;
    out.count = a.count + b.count;
    double delta = b.mean - a.mean;
    double na = static_cast<double>(a.count), nb = static_cast<double>(b.count);
    double n = static_cast<double>(out.count);
    out.mean = a.mean + delta * nb / n;
    out.m2 = a.m2 + b.m2 + delta * delta * na * nb / n;
    return out;
  }
  static double Lower(const Partial& p) {
    return p.count > 1 ? p.m2 / static_cast<double>(p.count) : 0;
  }
};

/// \brief Value range max - min (decomposable).
struct RangeAggregate {
  struct Partial {
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  static Partial Identity() { return {}; }
  static Partial Lift(const Event& e) { return {e.value, e.value}; }
  static Partial Combine(const Partial& a, const Partial& b) {
    return {std::min(a.min, b.min), std::max(a.max, b.max)};
  }
  static double Lower(const Partial& p) {
    return p.max >= p.min ? p.max - p.min : 0;
  }
};

/// \brief Accumulates one window's partial for aggregate \p Agg.
///
/// The decomposable counterpart of Dema's sorted window buffer: local nodes
/// fold events into a constant-size partial instead of retaining them —
/// which is precisely why the paper's problem (non-decomposable functions)
/// is hard: the median admits no such `Partial`.
template <typename Agg>
class PartialAccumulator {
 public:
  /// Folds one event into the partial.
  void Add(const Event& e) {
    partial_ = Agg::Combine(partial_, Agg::Lift(e));
    ++count_;
  }
  /// Merges another node's partial (the root-side combine).
  void Merge(const typename Agg::Partial& other) {
    partial_ = Agg::Combine(partial_, other);
  }
  /// The current partial aggregate.
  const typename Agg::Partial& partial() const { return partial_; }
  /// The finalized value.
  double Value() const { return Agg::Lower(partial_); }
  /// Events folded locally.
  uint64_t count() const { return count_; }
  /// Resets to the identity.
  void Reset() {
    partial_ = Agg::Identity();
    count_ = 0;
  }

 private:
  typename Agg::Partial partial_ = Agg::Identity();
  uint64_t count_ = 0;
};

}  // namespace dema::stream
