#include "stream/merge.h"

#include <algorithm>
#include <string>

namespace dema::stream {

namespace {
size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

LoserTreeMerger::LoserTreeMerger(std::vector<std::vector<Event>> runs)
    : runs_(std::move(runs)) {
  pos_.assign(runs_.size(), 0);
  for (const auto& run : runs_) remaining_ += run.size();
  k_ = NextPow2(std::max<size_t>(1, runs_.size()));
  tree_.assign(k_, 0);
  if (remaining_ == 0) return;

  // Bottom-up tournament: winners propagate, internal nodes keep losers.
  // Virtual leaves beyond runs_.size() behave as exhausted runs.
  struct Init {
    LoserTreeMerger* m;
    size_t Winner(size_t node) {
      if (node >= m->k_) return node - m->k_;
      size_t left = Winner(2 * node);
      size_t right = Winner(2 * node + 1);
      if (m->Loses(right, left)) {
        m->tree_[node] = right;
        return left;
      }
      m->tree_[node] = left;
      return right;
    }
  };
  tree_[0] = Init{this}.Winner(1);
}

bool LoserTreeMerger::Loses(size_t a, size_t b) const {
  bool a_done = a >= runs_.size() || pos_[a] >= runs_[a].size();
  bool b_done = b >= runs_.size() || pos_[b] >= runs_[b].size();
  if (a_done) return true;
  if (b_done) return false;
  // The global event order is strict, so ties cannot occur across runs.
  return !(runs_[a][pos_[a]] < runs_[b][pos_[b]]);
}

Event LoserTreeMerger::Next() {
  size_t winner = tree_[0];
  Event out = runs_[winner][pos_[winner]++];
  --remaining_;
  Replay(winner);
  return out;
}

void LoserTreeMerger::Replay(size_t runner) {
  size_t cur = runner;
  for (size_t node = (k_ + runner) / 2; node >= 1; node /= 2) {
    if (Loses(cur, tree_[node])) std::swap(cur, tree_[node]);
  }
  tree_[0] = cur;
}

std::vector<Event> MergeSortedRuns(std::vector<std::vector<Event>> runs) {
  LoserTreeMerger merger(std::move(runs));
  std::vector<Event> out;
  out.reserve(merger.remaining());
  while (merger.HasNext()) out.push_back(merger.Next());
  return out;
}

Result<std::vector<Event>> SelectRanksFromRuns(
    std::vector<std::vector<Event>> runs, const std::vector<uint64_t>& ranks) {
  uint64_t total = 0;
  for (const auto& run : runs) total += run.size();
  for (uint64_t rank : ranks) {
    if (rank < 1 || rank > total) {
      return Status::InvalidArgument("rank " + std::to_string(rank) +
                                     " outside merged runs [1, " +
                                     std::to_string(total) + "]");
    }
  }
  std::vector<Event> out(ranks.size());
  if (ranks.empty()) return out;

  // Visit the requested ranks in ascending order so one forward pass of the
  // tournament serves all of them; the tree never advances past the highest.
  std::vector<size_t> order(ranks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ranks[a] < ranks[b]; });

  LoserTreeMerger merger(std::move(runs));
  uint64_t produced = 0;
  Event current{};
  for (size_t idx : order) {
    while (produced < ranks[idx]) {
      current = merger.Next();
      ++produced;
    }
    out[idx] = current;  // duplicate ranks reuse the event already produced
  }
  return out;
}

}  // namespace dema::stream
