#include "stream/merge.h"

#include <algorithm>
#include <limits>
#include <string>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dema::stream {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Leaf count at or below which the flat argmin engine replaces the tree.
constexpr size_t kFlatMaxK = 8;

/// Orders after every real event: exhausted and virtual runs hold this, so
/// the advance loop needs no per-comparison exhaustion checks. Never
/// produced (`remaining_` gates `Next`).
Event Sentinel() {
  return Event{std::numeric_limits<double>::infinity(),
               std::numeric_limits<TimestampUs>::max(),
               std::numeric_limits<NodeId>::max(),
               std::numeric_limits<uint32_t>::max()};
}

/// Bitmask of the lanes of v[0..7] holding the minimum value.
uint32_t MinValueMask8Scalar(const double* v) {
  double mn = v[0];
  for (size_t i = 1; i < kFlatMaxK; ++i) mn = std::min(mn, v[i]);
  uint32_t mask = 0;
  for (size_t i = 0; i < kFlatMaxK; ++i) {
    if (v[i] == mn) mask |= 1u << i;
  }
  return mask;
}

#if defined(__x86_64__)
__attribute__((target("avx2"))) uint32_t MinValueMask8Avx2(const double* v) {
  __m256d a = _mm256_loadu_pd(v);
  __m256d b = _mm256_loadu_pd(v + 4);
  __m256d m = _mm256_min_pd(a, b);
  __m128d lo = _mm256_castpd256_pd128(m);
  __m128d hi = _mm256_extractf128_pd(m, 1);
  __m128d m2 = _mm_min_pd(lo, hi);
  __m128d m1 = _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
  __m256d vm = _mm256_broadcastsd_pd(m1);
  uint32_t mask_a = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_cmp_pd(a, vm, _CMP_EQ_OQ)));
  uint32_t mask_b = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_cmp_pd(b, vm, _CMP_EQ_OQ)));
  return mask_a | (mask_b << 4);
}

using MinMaskFn = uint32_t (*)(const double*);

/// Runtime dispatch, resolved once: AVX2 hardware argmin when the CPU has
/// it, portable scalar otherwise. Both return identical masks.
MinMaskFn ResolveMinMask() {
  return __builtin_cpu_supports("avx2") ? &MinValueMask8Avx2
                                        : &MinValueMask8Scalar;
}

uint32_t MinValueMask8(const double* v) {
  static const MinMaskFn fn = ResolveMinMask();
  return fn(v);
}
#else
uint32_t MinValueMask8(const double* v) { return MinValueMask8Scalar(v); }
#endif

}  // namespace

LoserTreeMerger::LoserTreeMerger(std::vector<std::vector<Event>> runs)
    : runs_(std::move(runs)) {
  pos_.assign(runs_.size(), 0);
  for (const auto& run : runs_) remaining_ += run.size();
  k_ = NextPow2(std::max<size_t>(1, runs_.size()));
  flat_ = k_ <= kFlatMaxK;
  // The flat engine always scans kFlatMaxK lanes so the SIMD path needs no
  // per-k masking; unused lanes hold the sentinel and never win.
  const size_t leaves = flat_ ? kFlatMaxK : k_;
  heads_.assign(leaves, Sentinel());
  head_vals_.assign(leaves, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i].empty()) {
      heads_[i] = runs_[i][0];
      head_vals_[i] = heads_[i].value;
    }
  }
  if (flat_ || remaining_ == 0) return;

  // Bottom-up tournament: winners propagate, internal nodes keep losers.
  // Virtual leaves beyond runs_.size() hold sentinels (exhausted runs).
  tree_.assign(k_, 0);
  struct Init {
    LoserTreeMerger* m;
    size_t Winner(size_t node) {
      if (node >= m->k_) return node - m->k_;
      size_t left = Winner(2 * node);
      size_t right = Winner(2 * node + 1);
      if (m->Loses(right, left)) {
        m->tree_[node] = right;
        return left;
      }
      m->tree_[node] = left;
      return right;
    }
  };
  tree_[0] = Init{this}.Winner(1);
}

bool LoserTreeMerger::Loses(size_t a, size_t b) const {
  // Heads are materialized (sentinel when exhausted), so this is a plain
  // comparison — no bounds checks in the replay loop. The global event
  // order is strict for honest inputs; if two runs nevertheless present
  // equal heads (duplicated events, or two sentinels), the lower leaf index
  // wins so the merge stays deterministic.
  const Event& ea = heads_[a];
  const Event& eb = heads_[b];
  if (eb < ea) return true;
  if (ea < eb) return false;
  return a > b;
}

size_t LoserTreeMerger::Winner() const {
  if (!flat_) return tree_[0];
  uint32_t mask = MinValueMask8(head_vals_.data());
  size_t w = static_cast<size_t>(__builtin_ctz(mask));
  mask &= mask - 1;
  // Value ties across lanes: resolve by the full event tuple, lowest leaf
  // index last (strict `<` keeps the earlier lane on exact duplicates).
  while (mask != 0) {
    size_t i = static_cast<size_t>(__builtin_ctz(mask));
    if (heads_[i] < heads_[w]) w = i;
    mask &= mask - 1;
  }
  return w;
}

void LoserTreeMerger::Advance(size_t w, size_t n) {
  pos_[w] += n;
  if (pos_[w] < runs_[w].size()) {
    heads_[w] = runs_[w][pos_[w]];
    head_vals_[w] = heads_[w].value;
  } else {
    heads_[w] = Sentinel();
    head_vals_[w] = std::numeric_limits<double>::infinity();
  }
  if (!flat_) Replay(w);
}

Event LoserTreeMerger::Next() {
  size_t w = Winner();
  Event out = heads_[w];
  --remaining_;
  Advance(w, 1);
  return out;
}

Event LoserTreeMerger::LimitExcluding(size_t w) const {
  Event best = Sentinel();
  if (flat_) {
    for (size_t i = 0; i < heads_.size(); ++i) {
      if (i != w && heads_[i] < best) best = heads_[i];
    }
    return best;
  }
  // In a loser tree the candidates to succeed leaf w are exactly the losers
  // stored on w's root path; their minimum bounds how far w may gallop.
  for (size_t node = (k_ + w) / 2; node >= 1; node /= 2) {
    const Event& l = heads_[tree_[node]];
    if (l < best) best = l;
  }
  return best;
}

void LoserTreeMerger::Skip(uint64_t n) {
  while (n > 0) {
    size_t w = Winner();
    const std::vector<Event>& run = runs_[w];
    // Gallop: every event of run w strictly below the best other head is
    // next in the merged order — binary search the boundary instead of
    // replaying the tournament per event.
    const Event limit = LimitExcluding(w);
    size_t hi = static_cast<size_t>(
        std::lower_bound(run.begin() + pos_[w], run.end(), limit) -
        run.begin());
    uint64_t m = std::min<uint64_t>(n, hi - pos_[w]);
    // A tie at the boundary (head == limit) gallops zero but still wins the
    // tournament by leaf index: emit one event to guarantee progress.
    if (m == 0) m = 1;
    remaining_ -= m;
    n -= m;
    Advance(w, static_cast<size_t>(m));
  }
}

void LoserTreeMerger::Replay(size_t runner) {
  size_t cur = runner;
  for (size_t node = (k_ + runner) / 2; node >= 1; node /= 2) {
    if (Loses(cur, tree_[node])) std::swap(cur, tree_[node]);
  }
  tree_[0] = cur;
}

std::vector<Event> MergeSortedRuns(std::vector<std::vector<Event>> runs) {
  LoserTreeMerger merger(std::move(runs));
  std::vector<Event> out;
  out.reserve(merger.remaining());
  while (merger.HasNext()) out.push_back(merger.Next());
  return out;
}

Result<std::vector<Event>> SelectRanksFromRuns(
    std::vector<std::vector<Event>> runs, const std::vector<uint64_t>& ranks) {
  uint64_t total = 0;
  for (const auto& run : runs) total += run.size();
  for (uint64_t rank : ranks) {
    if (rank < 1 || rank > total) {
      return Status::InvalidArgument("rank " + std::to_string(rank) +
                                     " outside merged runs [1, " +
                                     std::to_string(total) + "]");
    }
  }
  std::vector<Event> out(ranks.size());
  if (ranks.empty()) return out;

  // Visit the requested ranks in ascending order so one forward pass of the
  // tournament serves all of them, galloping over the gaps; the merger never
  // advances past the highest requested rank.
  std::vector<size_t> order(ranks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ranks[a] < ranks[b]; });

  LoserTreeMerger merger(std::move(runs));
  uint64_t produced = 0;
  Event current{};
  for (size_t idx : order) {
    if (ranks[idx] > produced) {
      merger.Skip(ranks[idx] - produced - 1);
      current = merger.Next();
      produced = ranks[idx];
    }
    out[idx] = current;  // duplicate ranks reuse the event already produced
  }
  return out;
}

}  // namespace dema::stream
