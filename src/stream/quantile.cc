#include "stream/quantile.h"

namespace dema::stream {

Result<Event> ExactQuantileSorted(const std::vector<Event>& sorted, double q) {
  if (sorted.empty()) return Status::InvalidArgument("empty dataset");
  if (!(q > 0.0) || q > 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1]");
  }
  uint64_t rank = QuantileRank(q, sorted.size());
  return sorted[rank - 1];
}

Result<double> ExactQuantileValues(std::vector<double> values, double q) {
  if (values.empty()) return Status::InvalidArgument("empty dataset");
  if (!(q > 0.0) || q > 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1]");
  }
  uint64_t rank = QuantileRank(q, values.size());
  auto nth = values.begin() + static_cast<ptrdiff_t>(rank - 1);
  std::nth_element(values.begin(), nth, values.end());
  return *nth;
}

}  // namespace dema::stream
