#pragma once

#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/result.h"

namespace dema::stream {

/// \brief Streaming k-way merger over pre-sorted event runs.
///
/// Used by the Dema root to combine per-node candidate events and by the
/// Desis baseline to merge whole sorted local windows.
///
/// The advance loop is branch-free with respect to run exhaustion: every
/// leaf holds a materialized head event, and exhausted (or virtual) runs
/// hold a +inf sentinel that loses every comparison — no per-comparison
/// `done` checks. Equal heads (possible when callers merge runs that break
/// the strict-total-order contract, e.g. duplicated events) are broken by
/// leaf index, lowest run first, so the merge order is always deterministic.
///
/// Two engines sit behind the same interface:
///  - k ≤ 8: a flat argmin over the contiguous head-value array, using AVX2
///    when the CPU has it (runtime dispatch) — the common root fan-in case.
///  - otherwise: a loser tree, O(log k) comparisons per produced event.
///
/// `Skip(n)` advances past n events without producing them, galloping
/// through the winning run by binary search up to the smallest head among
/// the other runs — rank selection with sparse ranks touches O(log run)
/// per gallop instead of O(n · log k).
class LoserTreeMerger {
 public:
  /// Takes ownership of \p runs; each run must be sorted by the global event
  /// order. Empty runs are allowed.
  explicit LoserTreeMerger(std::vector<std::vector<Event>> runs);

  /// True while events remain.
  bool HasNext() const { return remaining_ > 0; }

  /// Produces the next event in global order; must not be called when
  /// `HasNext()` is false.
  Event Next();

  /// Discards the next \p n events of the merged order (cheaper than n
  /// `Next()` calls when one run dominates a stretch). \p n must not exceed
  /// `remaining()`.
  void Skip(uint64_t n);

  /// Events not yet produced.
  uint64_t remaining() const { return remaining_; }

 private:
  /// Replays the tournament from leaf \p runner upward (tree engine).
  void Replay(size_t runner);
  /// True when leaf a's head loses to (is ordered after) leaf b's head.
  bool Loses(size_t a, size_t b) const;
  /// Current winning leaf (flat engine: argmin; tree engine: tree_[0]).
  size_t Winner() const;
  /// Advances leaf \p w by \p n events and refreshes its head/tournament.
  void Advance(size_t w, size_t n);
  /// Smallest head event among all leaves except \p w (the gallop limit).
  Event LimitExcluding(size_t w) const;

  std::vector<std::vector<Event>> runs_;
  std::vector<size_t> pos_;    // cursor per run
  /// Head event per padded leaf; exhausted/virtual leaves hold the sentinel.
  std::vector<Event> heads_;
  /// heads_[i].value mirrored contiguously for the SIMD/flat argmin.
  std::vector<double> head_vals_;
  std::vector<size_t> tree_;   // internal nodes hold losers; tree_[0] = winner
  size_t k_ = 0;               // padded leaf count (power of two)
  bool flat_ = false;          // k_ <= 8: argmin engine instead of the tree
  uint64_t remaining_ = 0;
};

/// \brief Fully merges \p runs into one sorted vector.
std::vector<Event> MergeSortedRuns(std::vector<std::vector<Event>> runs);

/// \brief Picks the events at the given 1-based global \p ranks across the
/// pre-sorted \p runs without materializing the merged sequence.
///
/// Advances the tournament only up to the highest requested rank, galloping
/// over the gaps between ranks (`LoserTreeMerger::Skip`): O(r_max · log k)
/// comparisons worst case, far fewer for sparse ranks, and O(1) extra
/// memory beyond the runs themselves, versus `MergeSortedRuns`'s full
/// O(n)-event allocation — the difference the root's calculation step runs
/// on. Ranks may repeat and arrive in any order; the result vector is
/// parallel to \p ranks. Fails with `InvalidArgument` when a rank falls
/// outside [1, total events].
Result<std::vector<Event>> SelectRanksFromRuns(
    std::vector<std::vector<Event>> runs, const std::vector<uint64_t>& ranks);

}  // namespace dema::stream
