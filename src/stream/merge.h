#pragma once

#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/result.h"

namespace dema::stream {

/// \brief Streaming k-way merger over pre-sorted event runs (loser tree).
///
/// Used by the Dema root to combine per-node candidate events and by the
/// Desis baseline to merge whole sorted local windows. O(log k) comparisons
/// per produced event regardless of run sizes.
class LoserTreeMerger {
 public:
  /// Takes ownership of \p runs; each run must be sorted by the global event
  /// order. Empty runs are allowed.
  explicit LoserTreeMerger(std::vector<std::vector<Event>> runs);

  /// True while events remain.
  bool HasNext() const { return remaining_ > 0; }

  /// Produces the next event in global order; must not be called when
  /// `HasNext()` is false.
  Event Next();

  /// Events not yet produced.
  uint64_t remaining() const { return remaining_; }

 private:
  /// Replays the tournament from leaf \p runner upward.
  void Replay(size_t runner);
  /// True when run a's head loses to (is >=) run b's head.
  bool Loses(size_t a, size_t b) const;

  std::vector<std::vector<Event>> runs_;
  std::vector<size_t> pos_;    // cursor per run
  std::vector<size_t> tree_;   // internal nodes hold losers; tree_[0] = winner
  size_t k_ = 0;               // padded leaf count (power of two)
  uint64_t remaining_ = 0;
};

/// \brief Fully merges \p runs into one sorted vector.
std::vector<Event> MergeSortedRuns(std::vector<std::vector<Event>> runs);

/// \brief Picks the events at the given 1-based global \p ranks across the
/// pre-sorted \p runs without materializing the merged sequence.
///
/// Advances the loser-tree tournament only up to the highest requested rank:
/// O(r_max · log k) comparisons and O(1) extra memory beyond the runs
/// themselves, versus `MergeSortedRuns`'s full O(n)-event allocation — the
/// difference the root's calculation step runs on. Ranks may repeat and
/// arrive in any order; the result vector is parallel to \p ranks. Fails
/// with `InvalidArgument` when a rank falls outside [1, total events].
Result<std::vector<Event>> SelectRanksFromRuns(
    std::vector<std::vector<Event>> runs, const std::vector<uint64_t>& ranks);

}  // namespace dema::stream
