#pragma once

#include <cstdint>
#include <vector>

#include "common/event.h"

namespace dema::stream {

/// \brief Streaming k-way merger over pre-sorted event runs (loser tree).
///
/// Used by the Dema root to combine per-node candidate events and by the
/// Desis baseline to merge whole sorted local windows. O(log k) comparisons
/// per produced event regardless of run sizes.
class LoserTreeMerger {
 public:
  /// Takes ownership of \p runs; each run must be sorted by the global event
  /// order. Empty runs are allowed.
  explicit LoserTreeMerger(std::vector<std::vector<Event>> runs);

  /// True while events remain.
  bool HasNext() const { return remaining_ > 0; }

  /// Produces the next event in global order; must not be called when
  /// `HasNext()` is false.
  Event Next();

  /// Events not yet produced.
  uint64_t remaining() const { return remaining_; }

 private:
  /// Replays the tournament from leaf \p runner upward.
  void Replay(size_t runner);
  /// True when run a's head loses to (is >=) run b's head.
  bool Loses(size_t a, size_t b) const;

  std::vector<std::vector<Event>> runs_;
  std::vector<size_t> pos_;    // cursor per run
  std::vector<size_t> tree_;   // internal nodes hold losers; tree_[0] = winner
  size_t k_ = 0;               // padded leaf count (power of two)
  uint64_t remaining_ = 0;
};

/// \brief Fully merges \p runs into one sorted vector.
std::vector<Event> MergeSortedRuns(std::vector<std::vector<Event>> runs);

}  // namespace dema::stream
