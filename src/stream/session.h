#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/event.h"
#include "stream/sorted_buffer.h"

namespace dema::stream {

/// \brief A closed session window: a burst of activity bounded by gaps.
struct ClosedSession {
  /// Event time of the first event in the session.
  TimestampUs start_us = 0;
  /// Event time of the last event in the session.
  TimestampUs last_us = 0;
  /// The session's events, sorted by the global event order.
  std::vector<Event> sorted_events;
};

/// \brief Session-window state machine (the third window type of the
/// paper's Section 2.1): events group by activity and a window closes after
/// `gap_us` of event-time inactivity.
///
/// Implements the general merging semantics: every event opens a candidate
/// session `[t, t + gap)` and any sessions whose activity ranges touch are
/// merged — so out-of-order events (within the watermark's allowed lateness)
/// can bridge two open sessions into one. A session closes once the
/// watermark passes its last event time plus the gap.
class SessionWindowManager {
 public:
  /// Creates a manager with the given inactivity gap (must be positive).
  explicit SessionWindowManager(DurationUs gap_us,
                                SortMode sort_mode = SortMode::kSortOnClose)
      : gap_us_(gap_us), sort_mode_(sort_mode) {}

  /// Routes one event. Returns false iff the event was late (its position
  /// already passed the watermark) and was dropped.
  bool OnEvent(const Event& e);

  /// Advances the watermark and returns every session whose quiet period
  /// completed (last event time + gap <= watermark), in start order.
  std::vector<ClosedSession> AdvanceWatermark(TimestampUs watermark_us);

  /// Closes and returns all remaining sessions (end of stream).
  std::vector<ClosedSession> Flush();

  /// Sessions currently open.
  size_t open_sessions() const { return open_.size(); }
  /// Late (dropped) events so far.
  uint64_t late_events() const { return late_events_; }
  /// Current watermark.
  TimestampUs watermark_us() const { return watermark_us_; }
  /// The inactivity gap.
  DurationUs gap_us() const { return gap_us_; }

 private:
  struct OpenSession {
    TimestampUs last_us = 0;
    SortedWindowBuffer buffer;
  };

  DurationUs gap_us_;
  SortMode sort_mode_;
  /// Open sessions keyed by start time (disjoint activity ranges).
  std::map<TimestampUs, OpenSession> open_;
  TimestampUs watermark_us_ = 0;
  uint64_t late_events_ = 0;
};

}  // namespace dema::stream
