#include "stream/sorted_buffer.h"

#include <algorithm>

namespace dema::stream {

void SortedWindowBuffer::Add(const Event& e) {
  if (mode_ == SortMode::kSortOnClose) {
    vec_.push_back(e);
  } else {
    ordered_.insert(e);
  }
}

uint64_t SortedWindowBuffer::size() const {
  return mode_ == SortMode::kSortOnClose ? vec_.size() : ordered_.size();
}

std::vector<Event> SortedWindowBuffer::TakeRaw(bool* is_sorted) {
  std::vector<Event> out;
  if (mode_ == SortMode::kSortOnClose) {
    out = std::move(vec_);
    vec_.clear();
    *is_sorted = out.empty();  // insertion order, unsorted unless trivial
  } else {
    out.assign(ordered_.begin(), ordered_.end());
    ordered_.clear();
    *is_sorted = true;
  }
  return out;
}

std::vector<Event> SortedWindowBuffer::TakeSorted() {
  std::vector<Event> out;
  if (mode_ == SortMode::kSortOnClose) {
    out = std::move(vec_);
    vec_.clear();
    std::sort(out.begin(), out.end());
  } else {
    out.assign(ordered_.begin(), ordered_.end());
    ordered_.clear();
  }
  return out;
}

}  // namespace dema::stream
