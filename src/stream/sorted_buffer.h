#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/event.h"

namespace dema::stream {

/// \brief How a local window keeps its events ordered.
enum class SortMode {
  /// Buffer unsorted, sort once when the window closes. Fastest in practice
  /// (one O(n log n) pass, cache friendly) and the default.
  kSortOnClose,
  /// Keep events ordered at all times (the paper's "incrementally sorts
  /// arriving events"). Useful when slices must be emitted before the window
  /// closes; costs O(log n) per insert with worse constants.
  kIncremental,
};

/// \brief Collects one local window's events and yields them fully sorted.
///
/// The sort order is the global event order `(value, timestamp, node, seq)`,
/// which makes ranks — and therefore exact quantiles — well defined across
/// duplicate values.
class SortedWindowBuffer {
 public:
  /// Creates a buffer with the given strategy.
  explicit SortedWindowBuffer(SortMode mode = SortMode::kSortOnClose)
      : mode_(mode) {}

  /// Adds one event.
  void Add(const Event& e);

  /// Number of events added so far.
  uint64_t size() const;

  /// True when nothing was added.
  bool empty() const { return size() == 0; }

  /// Finishes the window: returns all events sorted and leaves the buffer
  /// empty and reusable.
  std::vector<Event> TakeSorted();

  /// Finishes the window without paying for the sort on this thread: returns
  /// the events as cheaply as possible and reports through \p is_sorted
  /// whether they already obey the global order (kIncremental) or still need
  /// sorting (kSortOnClose insertion order). Used by the executor-backed
  /// close path, which moves the O(n log n) sort onto a worker.
  std::vector<Event> TakeRaw(bool* is_sorted);

  /// Visits every buffered event (in insertion or sorted order depending on
  /// the mode) without draining — used by checkpointing.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (mode_ == SortMode::kSortOnClose) {
      for (const Event& e : vec_) fn(e);
    } else {
      for (const Event& e : ordered_) fn(e);
    }
  }

 private:
  SortMode mode_;
  std::vector<Event> vec_;       // kSortOnClose
  std::multiset<Event> ordered_;  // kIncremental
};

}  // namespace dema::stream
