#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "net/serializer.h"

namespace dema::sketch {

/// \brief A weighted centroid of a t-digest.
struct Centroid {
  double mean = 0;
  double weight = 0;
};

/// \brief Merging t-digest (Dunning & Ertl, 2019) with the k1 scale function.
///
/// Approximate, mergeable quantile sketch: the `Tdigest` baseline of the
/// paper's evaluation. Accuracy concentrates at the tails (relative rank
/// error ~ O(1/compression) at q = 0.5, much tighter near 0 and 1), while
/// memory stays O(compression) regardless of stream length.
///
/// Incoming points are buffered and periodically merged into the centroid
/// list in one sorted pass; `Merge` folds another digest in the same way, so
/// local nodes can sketch independently and the root can combine summaries.
class TDigest {
 public:
  /// Creates a digest. \p compression (δ) trades accuracy for size; typical
  /// values are 50-500. Buffer size defaults to 5δ.
  explicit TDigest(double compression = 100.0, size_t buffer_size = 0);

  /// Adds one observation with the given weight.
  void Add(double x, double weight = 1.0);

  /// Folds \p other into this digest.
  void Merge(const TDigest& other);

  /// Flushes the input buffer into the centroid list.
  void Compress();

  /// Approximate q-quantile; fails on an empty digest or q outside [0, 1].
  Result<double> Quantile(double q) const;

  /// Approximate fraction of points <= x; fails on an empty digest.
  Result<double> Cdf(double x) const;

  /// Total weight added.
  double total_weight() const { return total_weight_ + buffered_weight_; }
  /// Number of centroids currently held (after compressing).
  size_t num_centroids() const { return centroids_.size(); }
  /// True when no observations were added.
  bool empty() const { return total_weight() == 0; }
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// The compression parameter δ.
  double compression() const { return compression_; }

  /// Serializes the digest (compressing first).
  void SerializeTo(net::Writer* w);
  /// Reconstructs a digest from `SerializeTo` output.
  static Result<TDigest> Deserialize(net::Reader* r);

 private:
  /// k1 scale function: k(q) = δ/(2π) · asin(2q − 1).
  double ScaleK(double q) const;
  /// Inverse of ScaleK.
  double ScaleKInv(double k) const;
  /// Merges `centroids_` with \p incoming (sorted by mean) in one pass.
  void MergeSorted(std::vector<Centroid>&& incoming);

  double compression_;
  size_t buffer_limit_;
  std::vector<Centroid> centroids_;  // sorted by mean, compressed
  std::vector<Centroid> buffer_;     // unsorted staging area
  double total_weight_ = 0;          // weight inside centroids_
  double buffered_weight_ = 0;       // weight inside buffer_
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dema::sketch
