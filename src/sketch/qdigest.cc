#include "sketch/qdigest.h"

#include <algorithm>
#include <cmath>

namespace dema::sketch {

ValueQuantizer::ValueQuantizer(double lo, double hi, uint32_t bits)
    : lo_(lo), hi_(hi) {
  bits = std::clamp<uint32_t>(bits, 1, 31);
  universe_ = uint64_t{1} << bits;
  if (!(hi_ > lo_)) hi_ = lo_ + 1.0;
}

uint64_t ValueQuantizer::ToBucket(double v) const {
  double frac = (v - lo_) / (hi_ - lo_);
  frac = std::clamp(frac, 0.0, 1.0);
  uint64_t b = static_cast<uint64_t>(frac * static_cast<double>(universe_));
  return std::min(b, universe_ - 1);
}

double ValueQuantizer::FromBucket(uint64_t bucket) const {
  double frac =
      (static_cast<double>(bucket) + 1.0) / static_cast<double>(universe_);
  return lo_ + frac * (hi_ - lo_);
}

QDigest::QDigest(ValueQuantizer quantizer, uint64_t k)
    : quantizer_(quantizer), k_(std::max<uint64_t>(1, k)),
      universe_(quantizer.universe()) {}

void QDigest::NodeRange(uint64_t id, uint64_t* lo, uint64_t* hi) const {
  // Node `id` sits at depth d where 2^d <= id < 2^(d+1); it covers
  // universe_ / 2^d consecutive buckets.
  uint64_t depth_size = 1;
  uint64_t v = id;
  while (v > 1) {
    v >>= 1;
    depth_size <<= 1;
  }
  uint64_t span = universe_ / depth_size;
  uint64_t index = id - depth_size;  // position within the level
  *lo = index * span;
  *hi = *lo + span - 1;
}

void QDigest::Add(double value, uint64_t weight) {
  if (weight == 0) return;
  counts_[LeafId(quantizer_.ToBucket(value))] += weight;
  n_ += weight;
  if (++inserts_since_compress_ >= k_) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

Status QDigest::Merge(const QDigest& other) {
  if (other.universe_ != universe_) {
    return Status::InvalidArgument("q-digest universes differ");
  }
  for (const auto& [id, w] : other.counts_) counts_[id] += w;
  n_ += other.n_;
  Compress();
  return Status::OK();
}

void QDigest::Compress() {
  if (n_ == 0) return;
  uint64_t threshold = n_ / k_;
  // Bottom-up sweep: walk stored ids from largest (deepest) to smallest and
  // fold undersized sibling pairs into their parent.
  // Iterating a map in reverse gives deepest-first order because child ids
  // are always larger than parent ids.
  std::vector<uint64_t> ids;
  ids.reserve(counts_.size());
  for (const auto& [id, w] : counts_) {
    (void)w;
    ids.push_back(id);
  }
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    uint64_t id = *it;
    if (id == 1) continue;  // root has no parent
    auto self = counts_.find(id);
    if (self == counts_.end()) continue;  // already folded away
    uint64_t sibling = id ^ 1;
    uint64_t parent = id >> 1;
    uint64_t sib_w = 0;
    auto sib_it = counts_.find(sibling);
    if (sib_it != counts_.end()) sib_w = sib_it->second;
    uint64_t par_w = 0;
    auto par_it = counts_.find(parent);
    if (par_it != counts_.end()) par_w = par_it->second;
    if (self->second + sib_w + par_w < threshold) {
      counts_[parent] = par_w + self->second + sib_w;
      counts_.erase(self);
      if (sib_it != counts_.end()) counts_.erase(sibling);
    }
  }
}

Result<double> QDigest::Quantile(double q) const {
  if (n_ == 0) return Status::InvalidArgument("empty digest");
  if (!(q > 0.0) || q > 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1]");
  }
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(n_)));
  rank = std::clamp<uint64_t>(rank, 1, n_);

  // Postorder by (range hi, range lo): ascending value order with deeper
  // (more precise) nodes first among ties.
  struct Entry {
    uint64_t hi, lo, weight;
  };
  std::vector<Entry> entries;
  entries.reserve(counts_.size());
  for (const auto& [id, w] : counts_) {
    uint64_t lo, hi;
    NodeRange(id, &lo, &hi);
    entries.push_back(Entry{hi, lo, w});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo > b.lo;
  });
  uint64_t cum = 0;
  for (const Entry& e : entries) {
    cum += e.weight;
    if (cum >= rank) return quantizer_.FromBucket(e.hi);
  }
  return quantizer_.FromBucket(entries.back().hi);
}

void QDigest::SerializeTo(net::Writer* w) {
  Compress();
  w->PutDouble(quantizer_.lo());
  w->PutDouble(quantizer_.hi());
  uint32_t bits = 0;
  for (uint64_t u = universe_; u > 1; u >>= 1) ++bits;
  w->PutU32(bits);
  w->PutU64(k_);
  w->PutU64(n_);
  w->PutU32(static_cast<uint32_t>(counts_.size()));
  for (const auto& [id, weight] : counts_) {
    w->PutU64(id);
    w->PutU64(weight);
  }
}

Result<QDigest> QDigest::Deserialize(net::Reader* r) {
  double lo = 0, hi = 0;
  DEMA_RETURN_NOT_OK(r->GetDouble(&lo));
  DEMA_RETURN_NOT_OK(r->GetDouble(&hi));
  uint32_t bits = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&bits));
  uint64_t k = 0, n = 0;
  DEMA_RETURN_NOT_OK(r->GetU64(&k));
  DEMA_RETURN_NOT_OK(r->GetU64(&n));
  uint32_t entries = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&entries));
  if (bits < 1 || bits > 31) return Status::SerializationError("bad universe bits");
  QDigest d(ValueQuantizer(lo, hi, bits), k);
  uint64_t total = 0;
  for (uint32_t i = 0; i < entries; ++i) {
    uint64_t id = 0, weight = 0;
    DEMA_RETURN_NOT_OK(r->GetU64(&id));
    DEMA_RETURN_NOT_OK(r->GetU64(&weight));
    if (id < 1 || id >= 2 * d.universe_) {
      return Status::SerializationError("node id out of tree");
    }
    d.counts_[id] += weight;
    total += weight;
  }
  if (total != n) return Status::SerializationError("weight sum mismatch");
  d.n_ = n;
  return d;
}

}  // namespace dema::sketch
