#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "net/serializer.h"

namespace dema::sketch {

/// \brief Linear quantizer mapping doubles in [lo, hi] onto the q-digest's
/// integer universe [0, 2^bits).
class ValueQuantizer {
 public:
  /// Creates a quantizer; \p bits in [1, 31].
  ValueQuantizer(double lo, double hi, uint32_t bits);

  /// Maps a value into the integer universe (clamped to the range).
  uint64_t ToBucket(double v) const;
  /// Maps a bucket back to the representative value (bucket upper edge, the
  /// conservative choice for quantile queries).
  double FromBucket(uint64_t bucket) const;

  /// Universe size (2^bits).
  uint64_t universe() const { return universe_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_, hi_;
  uint64_t universe_;
};

/// \brief q-digest (Shrivastava et al., 2004): a mergeable quantile summary
/// over a bounded integer universe, designed for sensor networks.
///
/// Maintains counts on nodes of the implicit binary partition tree of
/// [0, 2^bits). The digest property keeps at most O(k · bits) nodes while
/// guaranteeing rank error <= n·bits/k. Implemented here as the related-work
/// comparator from the paper (Section 5).
class QDigest {
 public:
  /// Creates a digest over the quantizer's universe with compression
  /// factor \p k (larger k = bigger, more accurate digest).
  QDigest(ValueQuantizer quantizer, uint64_t k);

  /// Adds one observation with the given weight.
  void Add(double value, uint64_t weight = 1);

  /// Folds another digest (same universe and k required) into this one.
  Status Merge(const QDigest& other);

  /// Re-establishes the digest property (called automatically; public for
  /// tests and benchmarks).
  void Compress();

  /// Approximate q-quantile; the returned value's rank is within
  /// n·bits/k of ⌈q·n⌉. Fails on an empty digest or invalid q.
  Result<double> Quantile(double q) const;

  /// Total weight added.
  uint64_t total_weight() const { return n_; }
  /// Number of tree nodes currently stored.
  size_t num_nodes() const { return counts_.size(); }
  /// True when no observations were added.
  bool empty() const { return n_ == 0; }
  /// The quantizer in use.
  const ValueQuantizer& quantizer() const { return quantizer_; }
  /// The compression factor k.
  uint64_t k() const { return k_; }

  /// Serializes the digest (compressing first).
  void SerializeTo(net::Writer* w);
  /// Reconstructs a digest from `SerializeTo` output.
  static Result<QDigest> Deserialize(net::Reader* r);

 private:
  /// Tree node ids: root = 1; children of v are 2v, 2v+1; leaves cover
  /// single universe values at depth `bits`.
  uint64_t LeafId(uint64_t bucket) const { return universe_ + bucket; }
  /// The universe interval [lo, hi] covered by tree node \p id.
  void NodeRange(uint64_t id, uint64_t* lo, uint64_t* hi) const;

  ValueQuantizer quantizer_;
  uint64_t k_;
  uint64_t universe_;
  std::map<uint64_t, uint64_t> counts_;  // node id -> weight
  uint64_t n_ = 0;
  uint64_t inserts_since_compress_ = 0;
};

}  // namespace dema::sketch
