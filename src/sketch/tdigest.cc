#include "sketch/tdigest.h"

#include <algorithm>
#include <cmath>

namespace dema::sketch {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

TDigest::TDigest(double compression, size_t buffer_size)
    : compression_(std::max(10.0, compression)),
      // Default buffer: 10x the compression, floor 1000 — the empirical sweet
      // spot for add throughput (the flush sort dominates the add path).
      buffer_limit_(buffer_size ? buffer_size
                                : std::max<size_t>(
                                      1000, static_cast<size_t>(10 * compression_))) {
  buffer_.reserve(buffer_limit_);
}

void TDigest::Add(double x, double weight) {
  if (weight <= 0) return;
  buffer_.push_back(Centroid{x, weight});
  buffered_weight_ += weight;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (buffer_.size() >= buffer_limit_) Compress();
}

void TDigest::Merge(const TDigest& other) {
  // Fold the other digest's centroids and pending buffer through our buffer;
  // Compress() handles the actual sorted merge.
  for (const Centroid& c : other.centroids_) {
    buffer_.push_back(c);
    buffered_weight_ += c.weight;
  }
  for (const Centroid& c : other.buffer_) {
    buffer_.push_back(c);
    buffered_weight_ += c.weight;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  Compress();
}

double TDigest::ScaleK(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  return compression_ / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double TDigest::ScaleKInv(double k) const {
  double s = std::sin(k * 2.0 * kPi / compression_);
  return (s + 1.0) / 2.0;
}

void TDigest::Compress() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end(),
            [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
  MergeSorted(std::move(buffer_));
  buffer_.clear();
  total_weight_ += buffered_weight_;
  buffered_weight_ = 0;
}

void TDigest::MergeSorted(std::vector<Centroid>&& incoming) {
  if (centroids_.empty()) {
    centroids_ = std::move(incoming);
  } else {
    std::vector<Centroid> merged;
    merged.reserve(centroids_.size() + incoming.size());
    std::merge(centroids_.begin(), centroids_.end(), incoming.begin(),
               incoming.end(), std::back_inserter(merged),
               [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
    centroids_ = std::move(merged);
  }
  double total = 0;
  for (const Centroid& c : centroids_) total += c.weight;
  if (total <= 0) {
    centroids_.clear();
    return;
  }

  // Single merging pass (Algorithm 1 of the t-digest paper).
  std::vector<Centroid> out;
  out.reserve(centroids_.size());
  double w_so_far = 0;
  double q_limit = ScaleKInv(ScaleK(0.0) + 1.0);
  Centroid cur = centroids_[0];
  for (size_t i = 1; i < centroids_.size(); ++i) {
    const Centroid& next = centroids_[i];
    double q = (w_so_far + cur.weight + next.weight) / total;
    if (q <= q_limit) {
      // Weighted average keeps the combined centroid's mean exact.
      cur.mean = (cur.mean * cur.weight + next.mean * next.weight) /
                 (cur.weight + next.weight);
      cur.weight += next.weight;
    } else {
      w_so_far += cur.weight;
      out.push_back(cur);
      q_limit = ScaleKInv(ScaleK(w_so_far / total) + 1.0);
      cur = next;
    }
  }
  out.push_back(cur);
  centroids_ = std::move(out);
}

Result<double> TDigest::Quantile(double q) const {
  if (q < 0.0 || q > 1.0) return Status::InvalidArgument("q must be in [0, 1]");
  // Quantile queries need compressed state; callers keep `const` access, so
  // compress a copy when observations are still buffered.
  if (!buffer_.empty()) {
    TDigest copy = *this;
    copy.Compress();
    return copy.Quantile(q);
  }
  if (centroids_.empty()) return Status::InvalidArgument("empty digest");
  if (centroids_.size() == 1) return centroids_[0].mean;

  double index = q * total_weight_;
  // Below half of the first centroid / above half of the last: clamp to the
  // exact extremes, which the digest tracks precisely.
  if (index <= centroids_.front().weight / 2.0) {
    double w0 = centroids_.front().weight / 2.0;
    if (w0 <= 0) return min_;
    double frac = index / w0;
    return min_ + frac * (centroids_.front().mean - min_);
  }
  double cum = 0;
  for (size_t i = 0; i + 1 < centroids_.size(); ++i) {
    const Centroid& a = centroids_[i];
    const Centroid& b = centroids_[i + 1];
    double a_center = cum + a.weight / 2.0;
    double b_center = cum + a.weight + b.weight / 2.0;
    if (index >= a_center && index <= b_center) {
      double frac = (index - a_center) / (b_center - a_center);
      return a.mean + frac * (b.mean - a.mean);
    }
    cum += a.weight;
  }
  // Tail beyond the last centroid's center.
  const Centroid& last = centroids_.back();
  double last_center = total_weight_ - last.weight / 2.0;
  double span = total_weight_ - last_center;
  if (span <= 0) return max_;
  double frac = std::clamp((index - last_center) / span, 0.0, 1.0);
  return last.mean + frac * (max_ - last.mean);
}

Result<double> TDigest::Cdf(double x) const {
  if (!buffer_.empty()) {
    TDigest copy = *this;
    copy.Compress();
    return copy.Cdf(x);
  }
  if (centroids_.empty()) return Status::InvalidArgument("empty digest");
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  if (centroids_.size() == 1) {
    double span = max_ - min_;
    return span > 0 ? (x - min_) / span : 0.5;
  }
  double cum = 0;
  for (size_t i = 0; i + 1 < centroids_.size(); ++i) {
    const Centroid& a = centroids_[i];
    const Centroid& b = centroids_[i + 1];
    if (x < b.mean) {
      double a_center = cum + a.weight / 2.0;
      double b_center = cum + a.weight + b.weight / 2.0;
      if (x < a.mean) {
        // Between min (or previous) and the first bracketing centroid.
        double span = a.mean - min_;
        double frac = span > 0 ? (x - min_) / span : 1.0;
        return std::clamp(frac * a_center / total_weight_, 0.0, 1.0);
      }
      double span = b.mean - a.mean;
      double frac = span > 0 ? (x - a.mean) / span : 0.5;
      return std::clamp((a_center + frac * (b_center - a_center)) / total_weight_,
                        0.0, 1.0);
    }
    cum += a.weight;
  }
  const Centroid& last = centroids_.back();
  double last_center = total_weight_ - last.weight / 2.0;
  double span = max_ - last.mean;
  double frac = span > 0 ? (x - last.mean) / span : 1.0;
  return std::clamp((last_center + frac * (total_weight_ - last_center)) /
                        total_weight_,
                    0.0, 1.0);
}

void TDigest::SerializeTo(net::Writer* w) {
  Compress();
  w->PutDouble(compression_);
  w->PutDouble(min_);
  w->PutDouble(max_);
  w->PutU32(static_cast<uint32_t>(centroids_.size()));
  for (const Centroid& c : centroids_) {
    w->PutDouble(c.mean);
    w->PutDouble(c.weight);
  }
}

Result<TDigest> TDigest::Deserialize(net::Reader* r) {
  double compression = 0, min_v = 0, max_v = 0;
  DEMA_RETURN_NOT_OK(r->GetDouble(&compression));
  DEMA_RETURN_NOT_OK(r->GetDouble(&min_v));
  DEMA_RETURN_NOT_OK(r->GetDouble(&max_v));
  uint32_t n = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&n));
  if (static_cast<size_t>(n) * 2 * sizeof(double) > r->remaining()) {
    return Status::SerializationError("centroid count exceeds remaining buffer");
  }
  TDigest d(compression);
  d.centroids_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Centroid c;
    DEMA_RETURN_NOT_OK(r->GetDouble(&c.mean));
    DEMA_RETURN_NOT_OK(r->GetDouble(&c.weight));
    if (c.weight < 0) return Status::SerializationError("negative centroid weight");
    d.centroids_.push_back(c);
    d.total_weight_ += c.weight;
  }
  d.min_ = min_v;
  d.max_ = max_v;
  return d;
}

}  // namespace dema::sketch
