#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "dema/root_node.h"
#include "net/keyed.h"
#include "shard/collector.h"
#include "shard/config.h"

namespace dema::shard {

/// Sink for one key's emitted window result.
using KeyedResultFn =
    std::function<void(net::KeyId, const sim::WindowOutput&)>;

/// \brief One root shard: an independent Dema root instance per key it owns.
///
/// The per-key state machine is the unmodified `DemaRootNode` (window-cut,
/// deadlines, validation, quarantine, degraded path — the full PR 5 root),
/// pointed at a `CollectingTransport`. Inbound keyed frames are demuxed into
/// per-key inner messages (seq 0 — the outer frame already went through
/// transport-level dedup); outbound per-key traffic is drained after every
/// per-key call, attributed to that key, and re-batched into one keyed frame
/// per (destination, message type) on the real transport.
///
/// Not thread-safe: the owning service serializes all calls on the shard's
/// strand.
class RootShard {
 public:
  /// Builds the shard's per-key roots eagerly for every key it owns under
  /// `ShardOfKey(key, config.num_shards) == index`. \p transport, \p clock
  /// and \p registry must outlive the shard.
  RootShard(uint32_t index, const ShardedConfig& config,
            transport::Transport* transport, const Clock* clock,
            obs::Registry* registry, KeyedResultFn on_result);

  /// Handles one inbound keyed frame (kShardSynopsisBatch or
  /// kShardCandidateReply). Malformed frames, wrong-shard frames, and
  /// unknown-key entries are counted and dropped — corruption must never
  /// take the shard down; per-entry payload validation (and quarantine) runs
  /// inside the per-key root.
  Status OnFrame(const net::Message& outer);

  /// Deadline tick fan-out over every per-key root (retries ship as keyed
  /// frames).
  Status Tick();

  /// Declares the workload horizon to every per-key root (deadline-mode gap
  /// fill).
  void NoteWindowHorizon(net::WindowId last);

  /// True when every per-key root has no partially aggregated window.
  bool idle() const;

  /// Keys owned by this shard.
  size_t num_keys() const { return roots_.size(); }

  uint32_t index() const { return index_; }

  /// The per-key root for \p key, or nullptr if this shard does not own it
  /// (test/diagnostic access).
  const core::DemaRootNode* root_for(net::KeyId key) const;

 private:
  /// Outbound keyed batches accumulated during one OnFrame/Tick, keyed by
  /// (destination, inner message type).
  using OutboundMap =
      std::map<std::pair<NodeId, net::MessageType>, net::KeyedBatch>;

  /// Drains the collector and appends everything to \p out under \p key.
  void StashCollected(net::KeyId key, OutboundMap* out);
  /// Sends every accumulated batch as one keyed frame. Send failures are
  /// counted (`shard.send_failures{shard=}`) and absorbed — the per-key
  /// deadline machinery retries or degrades, mirroring the root's own
  /// best-effort send semantics.
  Status FlushOutbound(OutboundMap* out);

  uint32_t index_;
  transport::Transport* transport_;
  CollectingTransport collector_;
  KeyedResultFn on_result_;
  std::unordered_map<net::KeyId, std::unique_ptr<core::DemaRootNode>> roots_;
  /// Owned keys in ascending order (deterministic Tick/horizon fan-out).
  std::vector<net::KeyId> keys_;
  obs::Counter* c_frames_;
  obs::Counter* c_wrong_shard_;
  obs::Counter* c_unknown_key_;
  obs::Counter* c_bad_frame_;
  obs::Counter* c_send_failures_;
};

}  // namespace dema::shard
