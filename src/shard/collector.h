#pragma once

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "transport/transport.h"

namespace dema::shard {

/// \brief Transport stub that buffers outbound messages instead of
/// delivering them.
///
/// The shard subsystem reuses the single-key `DemaRootNode`/`DemaLocalNode`
/// state machines per key by pointing them at one of these: after each
/// per-key `OnMessage`/`OnEvent` call the owner drains the buffer, attributes
/// the collected messages to that key, and re-batches them into keyed frames
/// on the real transport. Nothing sent here is charged to link metrics — the
/// outer keyed frame on the real transport carries the wire cost.
class CollectingTransport final : public transport::Transport {
 public:
  Status Send(net::Message m) override {
    std::lock_guard<std::mutex> lock(mu_);
    collected_.push_back(std::move(m));
    return Status::OK();
  }

  /// No nodes are hosted here; per-key nodes are fed synthesized messages
  /// directly by their owner.
  net::Channel* Inbox(NodeId) override { return nullptr; }

  transport::LinkTrafficMap LinkTraffic() const override { return {}; }
  std::map<net::MessageType, net::TrafficCounters> TrafficByType()
      const override {
    return {};
  }
  void Shutdown() override {}

  /// Moves everything collected since the last drain into \p out (appended).
  void Drain(std::vector<net::Message>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& m : collected_) out->push_back(std::move(m));
    collected_.clear();
  }

  /// True when nothing is buffered (cheap fast path between drains).
  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return collected_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::vector<net::Message> collected_;
};

}  // namespace dema::shard
