#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "gen/generator.h"
#include "net/network.h"
#include "shard/config.h"
#include "shard/local_mux.h"
#include "shard/service.h"

namespace dema::shard {

/// Seed stride between adjacent keys: key k's per-local generator seeds are
/// `seed_base + k * kKeySeedStride + local_index * 7919`, so the single-key
/// baseline for key k is exactly `MakeUniformWorkload(..., seed_base + k *
/// kKeySeedStride)` — the parity tests depend on this identity.
inline constexpr uint64_t kKeySeedStride = 1'000'003;

/// \brief Workload of a keyed sim run: every (key, local) pair runs its own
/// deterministic generator, all with the same distribution and rate.
struct KeyedWorkloadConfig {
  /// Tumbling windows of event time to generate.
  uint64_t num_windows = 10;
  /// Events per second of event time, per (key, local) stream.
  double event_rate = 1000.0;
  gen::DistributionParams distribution;
  uint64_t seed_base = 1000;
};

/// \brief In-process sharded deployment on the simulation fabric: the shard
/// service as node 0 plus N keyed local nodes, driven synchronously.
///
/// The driver mirrors `SyncDriver` exactly — generate one window per (key,
/// local), watermark, quiesce, pump until quiescent — with one addition:
/// after draining the service inbox it waits for all shard strands to drain
/// before pumping the local inboxes, so executor-backed runs produce the
/// same per-key message sequences as a single-threaded run.
class ShardedSimHarness {
 public:
  /// \p net_options configures fault injection on the fabric (tamper, drops,
  /// ...); the service/local nodes are built and registered immediately.
  explicit ShardedSimHarness(const ShardedConfig& config,
                             net::Network::Options net_options = {});

  /// Construction-time validation/registration result; `Run` fails while
  /// this is not OK.
  const Status& init_status() const { return init_status_; }

  /// Runs the whole workload; fails on the first node error. On success
  /// every key emitted exactly `workload.num_windows` windows and the
  /// service is idle.
  Status Run(const KeyedWorkloadConfig& workload);

  /// Emitted outputs per key, in emission order (index = key id).
  const std::vector<std::vector<sim::WindowOutput>>& outputs_by_key() const {
    return outputs_by_key_;
  }

  uint64_t events_ingested() const { return events_ingested_; }

  net::Network* network() { return &network_; }
  ShardedRootService* service() { return service_.get(); }
  KeyedLocalNode* local(size_t i) { return locals_[i].get(); }
  obs::Registry* registry() { return service_->registry(); }

 private:
  /// Pumps all inboxes (service first, strand barrier, then locals) until
  /// the fabric is quiescent.
  Status PumpMessages();

  ShardedConfig config_;
  RealClock clock_;
  net::Network network_;
  Status init_status_;
  std::unique_ptr<ShardedRootService> service_;
  std::vector<std::unique_ptr<KeyedLocalNode>> locals_;
  std::vector<std::vector<sim::WindowOutput>> outputs_by_key_;
  uint64_t events_ingested_ = 0;
};

}  // namespace dema::shard
