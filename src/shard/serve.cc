#include "shard/serve.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "shard/local_mux.h"
#include "shard/service.h"
#include "stream/window.h"
#include "transport/tcp.h"

namespace dema::shard {

namespace {

DurationUs ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

void MergeByType(const std::map<net::MessageType, net::TrafficCounters>& in,
                 std::map<net::MessageType, net::TrafficCounters>* out) {
  for (const auto& [type, counters] : in) {
    (*out)[type] += counters;
  }
}

net::Message ShutdownMessage(NodeId src, NodeId dst) {
  net::Message m;
  m.type = net::MessageType::kShutdown;
  m.src = src;
  m.dst = dst;
  return m;
}

}  // namespace

Result<ShardedServeReport> RunShardedTcpRoot(
    const ShardedConfig& config, const ShardedServeOptions& options) {
  DEMA_RETURN_NOT_OK(ValidateShardedConfig(config));
  RealClock clock;
  ShardedConfig cfg = config;
  std::unique_ptr<obs::Registry> owned_registry;
  if (cfg.registry == nullptr) {
    owned_registry = std::make_unique<obs::Registry>();
    cfg.registry = owned_registry.get();
  }

  transport::TcpTransportOptions topts;
  topts.listen_host = options.listen_host;
  topts.listen_port = options.listen_port;
  topts.adopted_listen_fd = options.adopted_listen_fd;
  topts.inbox_capacity = options.inbox_capacity;
  topts.outbox_capacity = options.outbox_capacity;
  topts.heartbeat_interval_us = options.heartbeat_interval_us;
  topts.heartbeat_misses = options.heartbeat_misses;
  topts.registry = cfg.registry;
  transport::TcpTransport transport(topts);
  DEMA_RETURN_NOT_OK(transport.AddLocalNode(0));
  DEMA_RETURN_NOT_OK(transport.Start());
  if (options.on_listening) options.on_listening(transport.bound_port());

  ShardedRootService service(cfg, &transport, &clock);
  DEMA_RETURN_NOT_OK(service.init_status());

  const uint64_t expected_total = options.expected_windows * cfg.num_keys;
  auto wall_start = std::chrono::steady_clock::now();
  net::Channel* inbox = transport.Inbox(0);
  Status run_status = Status::OK();
  // Phase 1: aggregate (answering queries inline the whole time). Phase 2:
  // linger — every window is in, keep serving queries until a client's
  // kShutdown or the linger budget ends.
  auto done_at = std::chrono::steady_clock::time_point::max();
  for (;;) {
    if (service.windows_emitted() >= expected_total &&
        done_at == std::chrono::steady_clock::time_point::max()) {
      // Strands may still be retiring the last frames; settle them so the
      // traffic and idle checks below see a finished system.
      run_status = service.WaitIdle();
      if (!run_status.ok()) break;
      done_at = std::chrono::steady_clock::now();
    }
    if (done_at != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() - done_at >=
            std::chrono::microseconds(options.linger_us)) {
      break;
    }
    if (ElapsedUs(wall_start) > options.timeout_us) {
      run_status = Status::Internal(
          "sharded tcp root timed out with " +
          std::to_string(service.windows_emitted()) + "/" +
          std::to_string(expected_total) + " per-key windows emitted");
      break;
    }
    auto msg = inbox->PopFor(MillisUs(2));
    if (!msg) {
      Status st = service.Tick();
      if (!st.ok()) {
        run_status = st;
        break;
      }
      continue;
    }
    if (msg->type == net::MessageType::kShutdown) {
      // A query client (or operator tool) releases the cluster early.
      if (msg->src >= kFirstQueryClientId) break;
      continue;
    }
    Status st = service.OnMessage(*msg);
    if (!st.ok()) {
      run_status = st;
      break;
    }
  }
  if (run_status.ok()) run_status = service.WaitIdle();
  auto wall_end = std::chrono::steady_clock::now();

  // Release the locals. Best effort: a local that never connected (or
  // already died) simply has no route.
  for (NodeId id : ShardLocalIds(cfg)) {
    Status st = transport.Send(ShutdownMessage(0, id));
    (void)st;
  }
  transport.Shutdown();
  DEMA_RETURN_NOT_OK(run_status);

  ShardedServeReport report;
  report.windows_emitted = service.windows_emitted();
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const obs::Counter* queries = cfg.registry->FindCounter("shard.queries");
  report.queries_answered = queries != nullptr ? queries->Value() : 0;
  MergeByType(transport.ReceivedByType(), &report.by_type);
  MergeByType(transport.TrafficByType(), &report.by_type);
  return report;
}

Result<ShardedTcpLocalReport> RunShardedTcpLocal(
    const ShardedConfig& config, const KeyedWorkloadConfig& workload,
    NodeId id, const ShardedTcpLocalOptions& options) {
  DEMA_RETURN_NOT_OK(ValidateShardedConfig(config));
  if (id == 0 || id > config.num_locals) {
    return Status::InvalidArgument("keyed local id " + std::to_string(id) +
                                   " out of range 1.." +
                                   std::to_string(config.num_locals));
  }
  RealClock clock;

  transport::TcpTransportOptions topts;
  topts.listen = false;  // pure client: replies arrive over the dialed conn
  topts.outbox_capacity = options.outbox_capacity;
  topts.heartbeat_interval_us = options.heartbeat_interval_us;
  topts.heartbeat_misses = options.heartbeat_misses;
  topts.auto_reconnect = options.auto_reconnect;
  transport::TcpTransport transport(topts);
  DEMA_RETURN_NOT_OK(transport.AddLocalNode(id));
  DEMA_RETURN_NOT_OK(
      transport.AddPeer(0, options.root_host, options.root_port));
  DEMA_RETURN_NOT_OK(transport.Start());

  KeyedLocalNodeOptions lopts;
  lopts.id = id;
  lopts.service_id = 0;
  lopts.num_shards = config.num_shards;
  lopts.num_keys = config.num_keys;
  lopts.window_len_us = config.window_len_us;
  lopts.initial_gamma = config.gamma;
  lopts.sort_mode = config.sort_mode;
  lopts.reply_codec = config.wire_codec;
  KeyedLocalNode node(lopts, &transport, &clock);

  const size_t i = id - 1;
  std::vector<std::unique_ptr<gen::StreamGenerator>> gens;
  gens.reserve(config.num_keys);
  for (net::KeyId key = 0; key < config.num_keys; ++key) {
    gen::GeneratorConfig gcfg;
    gcfg.node = id;
    gcfg.seed = workload.seed_base + key * kKeySeedStride + i * 7919;
    gcfg.distribution = workload.distribution;
    gcfg.event_rate = workload.event_rate;
    DEMA_ASSIGN_OR_RETURN(auto g, gen::StreamGenerator::Create(gcfg));
    gens.push_back(std::move(g));
  }

  net::Channel* inbox = transport.Inbox(id);
  auto wall_start = std::chrono::steady_clock::now();
  bool shutdown_received = false;
  Status run_status = Status::OK();
  ShardedTcpLocalReport report;

  auto handle = [&](const net::Message& msg) -> Status {
    if (msg.type == net::MessageType::kShutdown) {
      shutdown_received = true;
      return Status::OK();
    }
    return node.OnMessage(msg);
  };

  for (uint64_t w = 0; w < workload.num_windows && run_status.ok(); ++w) {
    const TimestampUs start =
        static_cast<TimestampUs>(w) * config.window_len_us;
    const TimestampUs end = start + config.window_len_us;
    for (net::KeyId key = 0; key < config.num_keys && run_status.ok(); ++key) {
      std::vector<Event> events =
          gens[key]->GenerateWindow(start, config.window_len_us);
      for (const Event& e : events) {
        run_status = node.OnEvent(key, e);
        if (!run_status.ok()) break;
      }
      report.events_ingested += events.size();
    }
    if (!run_status.ok()) break;
    run_status = node.OnWatermark(end);
    if (!run_status.ok()) break;
    run_status = node.Quiesce();
    if (!run_status.ok()) break;
    // Serve whatever candidate requests arrived while streaming.
    while (auto msg = inbox->TryPop()) {
      run_status = handle(*msg);
      if (!run_status.ok()) break;
    }
  }
  if (run_status.ok()) {
    run_status = node.OnFinish(static_cast<TimestampUs>(workload.num_windows) *
                               config.window_len_us);
  }
  // Serve candidate requests until the root releases us.
  while (run_status.ok() && !shutdown_received) {
    if (ElapsedUs(wall_start) > options.timeout_us) {
      run_status = Status::Internal("keyed tcp local " + std::to_string(id) +
                                    " timed out waiting for shutdown");
      break;
    }
    auto msg = inbox->PopFor(MillisUs(2));
    if (!msg) continue;
    run_status = handle(*msg);
  }
  transport.Shutdown();
  if (!run_status.ok() && !shutdown_received) return run_status;

  report.sent_links = transport.LinkTraffic();
  return report;
}

namespace {

/// One query session: its own connection, polling until its keys reach the
/// target window.
Status RunQuerySession(const ShardQueryOptions& options, size_t session,
                       const std::vector<net::KeyId>& keys,
                       uint64_t* queries_sent, net::KeyedQueryReply* final_reply,
                       bool* satisfied) {
  const NodeId my_id = options.id + static_cast<NodeId>(session);
  transport::TcpTransportOptions topts;
  topts.listen = false;
  transport::TcpTransport transport(topts);
  DEMA_RETURN_NOT_OK(transport.AddLocalNode(my_id));
  DEMA_RETURN_NOT_OK(
      transport.AddPeer(0, options.root_host, options.root_port));
  DEMA_RETURN_NOT_OK(transport.Start());
  net::Channel* inbox = transport.Inbox(my_id);

  auto wall_start = std::chrono::steady_clock::now();
  uint64_t next_query_id = 1;
  Status result = Status::OK();
  *satisfied = false;
  while (!*satisfied) {
    if (ElapsedUs(wall_start) > options.timeout_us) {
      result = Status::Internal("query session " + std::to_string(session) +
                                " timed out after " +
                                std::to_string(*queries_sent) + " queries");
      break;
    }
    net::KeyedQuery query;
    query.query_id = next_query_id++;
    query.keys = keys;
    query.quantiles = options.quantiles;
    net::Message frame = net::MakeMessage(net::MessageType::kShardQuery,
                                          my_id, /*dst=*/0, query);
    result = transport.Send(std::move(frame));
    if (!result.ok()) break;
    ++*queries_sent;

    // Wait for the matching reply, but only up to the resend interval: a
    // query (or its reply) lost in transit must cost one interval, not the
    // whole session timeout. Re-sending is safe — queries are idempotent
    // reads, and stale replies are skipped by query_id below.
    auto sent_at = std::chrono::steady_clock::now();
    bool got_reply = false;
    while (!got_reply) {
      if (ElapsedUs(wall_start) > options.timeout_us) {
        result = Status::Internal("query session " + std::to_string(session) +
                                  " timed out waiting for a reply");
        break;
      }
      if (ElapsedUs(sent_at) > options.resend_us) break;
      auto msg = inbox->PopFor(MillisUs(5));
      if (!msg) continue;
      if (msg->type != net::MessageType::kShardQueryReply) continue;
      net::Reader r(msg->payload_bytes());
      auto reply = net::KeyedQueryReply::Deserialize(&r);
      if (!reply.ok()) {
        result = reply.status();
        break;
      }
      if (reply->query_id != query.query_id) continue;  // stale poll answer
      if (!reply->error.empty()) {
        result = Status::InvalidArgument("query rejected: " + reply->error);
        break;
      }
      *final_reply = std::move(*reply);
      got_reply = true;
    }
    if (!result.ok()) break;
    if (!got_reply) continue;  // resend under a fresh query_id

    bool all_reached = true;
    for (const net::KeyedAnswer& a : final_reply->answers) {
      if (!a.found || a.window_id < options.until_window) {
        all_reached = false;
        break;
      }
    }
    if (all_reached) {
      *satisfied = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  transport.Shutdown();
  return result;
}

}  // namespace

Result<ShardQueryReport> RunShardQueryClient(const ShardQueryOptions& options) {
  if (options.keys.empty()) {
    return Status::InvalidArgument("query client needs at least one key");
  }
  if (options.concurrency == 0) {
    return Status::InvalidArgument("query concurrency must be at least 1");
  }
  const size_t sessions = std::min(options.concurrency, options.keys.size());

  // Round-robin key split: session t owns keys[t], keys[t + sessions], ...
  std::vector<std::vector<net::KeyId>> slices(sessions);
  for (size_t i = 0; i < options.keys.size(); ++i) {
    slices[i % sessions].push_back(options.keys[i]);
  }

  std::vector<Status> statuses(sessions, Status::OK());
  std::vector<uint64_t> sent(sessions, 0);
  std::vector<net::KeyedQueryReply> replies(sessions);
  std::vector<bool> satisfied(sessions, false);
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (size_t t = 0; t < sessions; ++t) {
    threads.emplace_back([&, t] {
      bool ok = false;
      statuses[t] = RunQuerySession(options, t, slices[t], &sent[t],
                                    &replies[t], &ok);
      satisfied[t] = ok;
    });
  }
  for (auto& th : threads) th.join();

  ShardQueryReport report;
  for (size_t t = 0; t < sessions; ++t) {
    DEMA_RETURN_NOT_OK(statuses[t]);
    report.queries_sent += sent[t];
    for (const net::KeyedAnswer& a : replies[t].answers) {
      if (a.found) ++report.keys_found;
    }
    report.final_replies.push_back(std::move(replies[t]));
  }

  if (options.shutdown_root) {
    // Only after every session finished: an early shutdown would end the
    // root's linger while other sessions are still polling.
    const NodeId my_id = options.id + static_cast<NodeId>(sessions);
    transport::TcpTransportOptions topts;
    topts.listen = false;
    transport::TcpTransport transport(topts);
    DEMA_RETURN_NOT_OK(transport.AddLocalNode(my_id));
    DEMA_RETURN_NOT_OK(
        transport.AddPeer(0, options.root_host, options.root_port));
    DEMA_RETURN_NOT_OK(transport.Start());
    Status st = transport.Send(ShutdownMessage(my_id, 0));
    (void)st;
    transport.Shutdown();
  }
  return report;
}

}  // namespace dema::shard
