#include "shard/local_mux.h"

#include "shard/key.h"

namespace dema::shard {

KeyedLocalNode::KeyedLocalNode(KeyedLocalNodeOptions options,
                               transport::Transport* transport,
                               const Clock* clock)
    : options_(std::move(options)), transport_(transport) {
  if (options_.registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  } else {
    registry_ = options_.registry;
  }
  const std::string suffix = "{node=" + std::to_string(options_.id) + "}";
  c_frames_ = registry_->GetCounter("shard.local.frames" + suffix);
  c_bad_frame_ = registry_->GetCounter("shard.local.bad_frame" + suffix);
  c_unknown_key_ = registry_->GetCounter("shard.local.unknown_key" + suffix);
  c_send_failures_ =
      registry_->GetCounter("shard.local.send_failures" + suffix);

  core::DemaLocalNodeOptions opts;
  opts.id = options_.id;
  opts.root_id = options_.service_id;
  opts.window_len_us = options_.window_len_us;
  opts.initial_gamma = options_.initial_gamma;
  opts.sort_mode = options_.sort_mode;
  opts.reply_codec = options_.reply_codec;
  opts.registry = registry_;
  opts.executor = options_.executor;

  locals_.reserve(options_.num_keys);
  shard_of_.reserve(options_.num_keys);
  for (net::KeyId key = 0; key < options_.num_keys; ++key) {
    locals_.push_back(
        std::make_unique<core::DemaLocalNode>(opts, &collector_, clock));
    shard_of_.push_back(ShardOfKey(key, options_.num_shards));
  }
}

const core::DemaLocalNode* KeyedLocalNode::local_for(net::KeyId key) const {
  return key < locals_.size() ? locals_[key].get() : nullptr;
}

Status KeyedLocalNode::OnEvent(net::KeyId key, const Event& e) {
  if (key >= locals_.size()) {
    return Status::InvalidArgument("event for unknown key " +
                                   std::to_string(key));
  }
  DEMA_RETURN_NOT_OK(locals_[key]->OnEvent(e));
  // Ingest alone never closes a window, but stay defensive: anything the
  // per-key local did send must not linger unattributed in the collector.
  if (!collector_.empty()) {
    OutboundMap out;
    StashCollected(key, &out);
    return FlushOutbound(&out);
  }
  return Status::OK();
}

Status KeyedLocalNode::OnWatermark(TimestampUs watermark_us) {
  OutboundMap out;
  for (net::KeyId key = 0; key < locals_.size(); ++key) {
    DEMA_RETURN_NOT_OK(locals_[key]->OnWatermark(watermark_us));
    StashCollected(key, &out);
  }
  return FlushOutbound(&out);
}

Status KeyedLocalNode::OnFinish(TimestampUs final_watermark_us) {
  OutboundMap out;
  for (net::KeyId key = 0; key < locals_.size(); ++key) {
    DEMA_RETURN_NOT_OK(locals_[key]->OnFinish(final_watermark_us));
    StashCollected(key, &out);
  }
  return FlushOutbound(&out);
}

Status KeyedLocalNode::Quiesce() {
  OutboundMap out;
  for (net::KeyId key = 0; key < locals_.size(); ++key) {
    DEMA_RETURN_NOT_OK(locals_[key]->Quiesce());
    StashCollected(key, &out);
  }
  return FlushOutbound(&out);
}

Status KeyedLocalNode::OnMessage(const net::Message& outer) {
  if (dedup_.IsDuplicate(outer.src, outer.seq)) return Status::OK();
  if (outer.type != net::MessageType::kShardCandidateRequest &&
      outer.type != net::MessageType::kShardGammaUpdate) {
    c_bad_frame_->Increment();
    return Status::OK();
  }
  c_frames_->Increment();
  net::Reader r(outer.payload_bytes());
  auto batch = net::KeyedBatch::Deserialize(&r);
  if (!batch.ok()) {
    c_bad_frame_->Increment();
    return Status::OK();
  }
  auto inner_type = net::KeyedInnerType(outer.type);
  if (!inner_type.ok()) {
    c_bad_frame_->Increment();
    return Status::OK();
  }

  OutboundMap out;
  for (auto& entry : batch->entries) {
    if (entry.key >= locals_.size()) {
      c_unknown_key_->Increment();
      continue;
    }
    net::Message inner;
    inner.type = *inner_type;
    inner.src = outer.src;
    inner.dst = outer.dst;
    inner.seq = 0;  // the outer frame already passed dedup above
    inner.payload = std::move(entry.payload);
    inner.send_time_us = outer.send_time_us;
    DEMA_RETURN_NOT_OK(locals_[entry.key]->OnMessage(inner));
    StashCollected(entry.key, &out);
  }
  return FlushOutbound(&out);
}

void KeyedLocalNode::StashCollected(net::KeyId key, OutboundMap* out) {
  if (collector_.empty()) return;
  std::vector<net::Message> collected;
  collector_.Drain(&collected);
  for (auto& m : collected) {
    net::KeyedBatch& batch = (*out)[{shard_of_[key], m.type}];
    batch.shard = shard_of_[key];
    batch.event_count += m.event_count;
    batch.entries.push_back({key, m.TakePayload()});
  }
}

Status KeyedLocalNode::FlushOutbound(OutboundMap* out) {
  for (auto& [route, batch] : *out) {
    auto outer_type = net::KeyedOuterType(route.second);
    if (!outer_type.ok()) {
      // Per-key locals only send synopsis batches and candidate replies;
      // anything else (e.g. a gamma resync, which keyed runs never issue) is
      // a programming error worth failing loudly on.
      return outer_type.status();
    }
    net::Message frame = net::MakeMessage(*outer_type, options_.id,
                                          options_.service_id, batch);
    Status sent = transport_->Send(std::move(frame));
    if (!sent.ok()) c_send_failures_->Increment();
  }
  out->clear();
  return Status::OK();
}

}  // namespace dema::shard
