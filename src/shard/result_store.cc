#include "shard/result_store.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace dema::shard {

ResultStore::ResultStore(uint32_t num_shards, uint64_t num_keys,
                         std::vector<double> quantiles)
    : num_shards_(num_shards),
      num_keys_(num_keys),
      quantiles_(std::move(quantiles)) {
  stripes_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void ResultStore::Publish(uint32_t shard, net::KeyId key,
                          const sim::WindowOutput& out) {
  Stripe& stripe = *stripes_[shard % num_shards_];
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    // Windows can complete out of order: a window whose candidate round
    // touches fewer locals finishes before an older one still in flight.
    // "Latest" therefore means highest window id, not most recent arrival —
    // an older result must never overwrite a newer one.
    auto [it, inserted] = stripe.latest.try_emplace(key, out);
    if (!inserted && out.window_id > it->second.window_id) it->second = out;
    ++stripe.epoch;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
}

Status ResultStore::ResolveQuantiles(const std::vector<double>& asked,
                                     std::vector<size_t>* indices) const {
  indices->clear();
  if (asked.empty()) {
    indices->reserve(quantiles_.size());
    for (size_t i = 0; i < quantiles_.size(); ++i) indices->push_back(i);
    return Status::OK();
  }
  for (double q : asked) {
    size_t found = quantiles_.size();
    for (size_t i = 0; i < quantiles_.size(); ++i) {
      if (std::abs(quantiles_[i] - q) < 1e-12) {
        found = i;
        break;
      }
    }
    if (found == quantiles_.size()) {
      return Status::InvalidArgument("quantile " + std::to_string(q) +
                                     " is not computed by this service");
    }
    indices->push_back(found);
  }
  return Status::OK();
}

net::KeyedQueryReply ResultStore::Query(const net::KeyedQuery& query) const {
  net::KeyedQueryReply reply;
  reply.query_id = query.query_id;

  std::vector<size_t> indices;
  Status resolved = ResolveQuantiles(query.quantiles, &indices);
  if (!resolved.ok()) {
    reply.error = resolved.message();
    return reply;
  }
  reply.quantiles.reserve(indices.size());
  for (size_t i : indices) reply.quantiles.push_back(quantiles_[i]);

  // Group the asked keys by shard, remembering each key's position in the
  // query so the reply preserves the caller's order.
  std::map<uint32_t, std::vector<std::pair<size_t, net::KeyId>>> by_shard;
  for (size_t pos = 0; pos < query.keys.size(); ++pos) {
    const net::KeyId key = query.keys[pos];
    if (key >= num_keys_) {
      reply.error = "unknown key " + std::to_string(key) + " (service has " +
                    std::to_string(num_keys_) + " keys)";
      return reply;
    }
    by_shard[ShardOfKey(key, num_shards_)].emplace_back(pos, key);
  }

  reply.answers.resize(query.keys.size());
  for (const auto& [shard, members] : by_shard) {
    const Stripe& stripe = *stripes_[shard];
    // One lock acquisition per touched shard: all of this shard's keys are
    // answered from the same publish snapshot.
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [pos, key] : members) {
      net::KeyedAnswer& a = reply.answers[pos];
      a.key = key;
      auto it = stripe.latest.find(key);
      if (it == stripe.latest.end()) {
        a.found = false;
        continue;
      }
      const sim::WindowOutput& out = it->second;
      a.found = true;
      a.window_id = out.window_id;
      a.global_size = out.global_size;
      a.degraded = out.degraded;
      a.rank_error_bound = out.rank_error_bound;
      a.values.reserve(indices.size());
      for (size_t i : indices) {
        a.values.push_back(i < out.values.size() ? out.values[i] : 0.0);
      }
    }
  }
  return reply;
}

std::optional<sim::WindowOutput> ResultStore::Latest(net::KeyId key) const {
  if (key >= num_keys_) return std::nullopt;
  const Stripe& stripe = *stripes_[ShardOfKey(key, num_shards_)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.latest.find(key);
  if (it == stripe.latest.end()) return std::nullopt;
  return it->second;
}

}  // namespace dema::shard
