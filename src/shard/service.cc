#include "shard/service.h"

namespace dema::shard {

ShardedRootService::ShardedRootService(ShardedConfig config,
                                       transport::Transport* transport,
                                       const Clock* clock)
    : config_(std::move(config)),
      transport_(transport),
      init_status_(ValidateShardedConfig(config_)),
      store_(init_status_.ok() ? config_.num_shards : 1,
             init_status_.ok() ? config_.num_keys : 1, config_.quantiles) {
  if (config_.registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  } else {
    registry_ = config_.registry;
  }
  c_queries_ = registry_->GetCounter("shard.queries");
  c_query_errors_ = registry_->GetCounter("shard.query_errors");
  c_bad_frame_ = registry_->GetCounter("shard.service.bad_frame");
  c_reply_send_failures_ =
      registry_->GetCounter("shard.reply_send_failures");
  if (!init_status_.ok()) return;

  if (config_.executor != nullptr) {
    executor_ = config_.executor;
  } else {
    exec::ExecutorOptions exec_opts;
    exec_opts.workers = config_.workers;
    exec_opts.registry = registry_;
    owned_executor_ = std::make_unique<exec::Executor>(exec_opts);
    executor_ = owned_executor_.get();
  }

  shards_.reserve(config_.num_shards);
  strands_.reserve(config_.num_shards);
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<RootShard>(
        s, config_, transport_, clock, registry_,
        [this, s](net::KeyId key, const sim::WindowOutput& out) {
          OnKeyedResult(s, key, out);
        }));
    strands_.push_back(std::make_unique<Strand>());
  }
}

ShardedRootService::~ShardedRootService() {
  // Strand tasks reference the shards; make sure none are queued or running
  // before members start destructing.
  (void)WaitIdle();
}

void ShardedRootService::OnKeyedResult(uint32_t s, net::KeyId key,
                                       const sim::WindowOutput& out) {
  store_.Publish(s, key, out);
  windows_total_.fetch_add(1, std::memory_order_relaxed);
  if (on_result_) on_result_(key, out);
  if (callback_) callback_(out);
}

void ShardedRootService::RecordError(const Status& st) {
  if (st.ok()) return;
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = st;
}

Status ShardedRootService::FirstError() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

void ShardedRootService::Post(uint32_t s, std::function<Status()> fn) {
  Strand& strand = *strands_[s];
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(strand.mu);
    strand.tasks.push_back(std::move(fn));
    if (!strand.running) {
      strand.running = true;
      schedule = true;
    }
  }
  if (schedule) {
    executor_->Submit([this, s] { RunStrand(s); });
  }
}

void ShardedRootService::RunStrand(uint32_t s) {
  Strand& strand = *strands_[s];
  for (;;) {
    std::function<Status()> task;
    {
      std::lock_guard<std::mutex> lock(strand.mu);
      if (strand.tasks.empty()) {
        strand.running = false;
        strand.idle_cv.notify_all();
        return;
      }
      task = std::move(strand.tasks.front());
      strand.tasks.pop_front();
    }
    RecordError(task());
  }
}

Status ShardedRootService::WaitIdle() {
  for (auto& strand_ptr : strands_) {
    Strand& strand = *strand_ptr;
    std::unique_lock<std::mutex> lock(strand.mu);
    strand.idle_cv.wait(
        lock, [&] { return strand.tasks.empty() && !strand.running; });
  }
  return FirstError();
}

bool ShardedRootService::idle() const {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Strand& strand = *strands_[s];
    std::lock_guard<std::mutex> lock(strand.mu);
    if (!strand.tasks.empty() || strand.running) return false;
    // The strand lock orders this read after the strand's last task, so the
    // shard's state is safe to inspect here.
    if (!shards_[s]->idle()) return false;
  }
  return true;
}

Status ShardedRootService::Tick() {
  DEMA_RETURN_NOT_OK(init_status_);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Post(s, [this, s] { return shards_[s]->Tick(); });
  }
  return FirstError();
}

void ShardedRootService::NoteWindowHorizon(net::WindowId last) {
  if (!init_status_.ok()) return;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Post(s, [this, s, last] {
      shards_[s]->NoteWindowHorizon(last);
      return Status::OK();
    });
  }
}

Status ShardedRootService::OnMessage(const net::Message& msg) {
  DEMA_RETURN_NOT_OK(init_status_);
  switch (msg.type) {
    case net::MessageType::kShardSynopsisBatch:
    case net::MessageType::kShardCandidateReply: {
      // Exactly-once applies to state-mutating aggregation traffic only.
      if (dedup_.IsDuplicate(msg.src, msg.seq)) return Status::OK();
      auto shard = net::KeyedBatch::PeekShard(msg.payload_bytes());
      if (!shard.ok() || *shard >= shards_.size()) {
        c_bad_frame_->Increment();
        return Status::OK();
      }
      const uint32_t s = *shard;
      Post(s, [this, s, m = msg]() { return shards_[s]->OnFrame(m); });
      return FirstError();
    }
    case net::MessageType::kShardQuery: {
      // Queries skip the dedup filter: they are idempotent reads correlated
      // by query_id, and a client that reconnects under the same node id
      // restarts its seq counter — the filter would swallow its first query.
      c_queries_->Increment();
      net::Reader r(msg.payload_bytes());
      auto query = net::KeyedQuery::Deserialize(&r);
      net::KeyedQueryReply reply;
      if (!query.ok()) {
        reply.error = query.status().message();
      } else {
        reply = store_.Query(*query);
      }
      if (!reply.error.empty()) c_query_errors_->Increment();
      net::Message frame = net::MakeMessage(
          net::MessageType::kShardQueryReply, msg.dst, msg.src, reply);
      Status sent = transport_->Send(std::move(frame));
      if (!sent.ok()) c_reply_send_failures_->Increment();
      return Status::OK();
    }
    case net::MessageType::kShutdown:
      // The hosting run loop decides when to stop; nothing to do here.
      return Status::OK();
    default:
      c_bad_frame_->Increment();
      return Status::OK();
  }
}

}  // namespace dema::shard
