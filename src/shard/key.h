#pragma once

#include <cstdint>

#include "net/keyed.h"

namespace dema::shard {

/// Finalizer of the splitmix64 generator (Steele et al.); a cheap,
/// well-mixed 64-bit hash so dense key ids 0..K-1 spread evenly across
/// shards instead of striping by `key % S`.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The shard that owns \p key in a service with \p num_shards shards. Pure
/// and stable: every local, the service, and every test computes the same
/// mapping with no coordination.
inline uint32_t ShardOfKey(net::KeyId key, uint32_t num_shards) {
  return static_cast<uint32_t>(MixKey(key) % num_shards);
}

}  // namespace dema::shard
