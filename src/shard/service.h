#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "exec/executor.h"
#include "net/dedup.h"
#include "net/keyed.h"
#include "obs/registry.h"
#include "shard/config.h"
#include "shard/result_store.h"
#include "shard/root_shard.h"
#include "sim/node.h"

namespace dema::shard {

/// \brief The multi-tenant root service: N independent `RootShard`s behind
/// one transport node, scheduled on the `src/exec` pool.
///
/// Each shard has a *strand* — a serialized task queue drained on the
/// executor — so shards progress concurrently while every individual shard
/// stays single-threaded (the per-key roots are plain sequential state
/// machines). Inbound keyed frames are routed by the frame's shard index
/// (`KeyedBatch::PeekShard`, no full decode on the run-loop thread); query
/// frames are answered inline from the thread-safe `ResultStore`, so queries
/// never wait behind window aggregation.
///
/// Implements `sim::RootNodeLogic`, so the existing drivers and the TCP
/// serve loop host it exactly like the single-root node.
class ShardedRootService final : public sim::RootNodeLogic {
 public:
  /// \p transport and \p clock must outlive the service. Invalid configs are
  /// reported via `init_status()` (every OnMessage fails until fixed),
  /// mirroring `DemaRootNode`.
  ShardedRootService(ShardedConfig config, transport::Transport* transport,
                     const Clock* clock);
  ~ShardedRootService() override;

  Status OnMessage(const net::Message& msg) override;

  /// Per-(key, window) results, called from shard strands — the callback
  /// must be thread-safe when the executor has > 1 worker.
  void SetKeyedResultCallback(KeyedResultFn cb) { on_result_ = std::move(cb); }
  /// `RootNodeLogic` sink: receives every per-key window output (without the
  /// key). Prefer `SetKeyedResultCallback`; same thread-safety contract.
  void SetResultCallback(sim::ResultCallback cb) override {
    callback_ = std::move(cb);
  }

  /// Total per-key windows emitted across all shards.
  uint64_t windows_emitted() const override {
    return windows_total_.load(std::memory_order_relaxed);
  }

  /// True when every strand is drained and every per-key root is idle.
  bool idle() const override;

  /// Deadline tick, fanned out to every shard on its strand.
  Status Tick() override;

  /// Declares the workload horizon to every per-key root (posted per
  /// strand).
  void NoteWindowHorizon(net::WindowId last);

  /// Blocks until every strand's queue is empty and no strand task is
  /// running, then returns the first error any strand task produced (sticky;
  /// also returned by subsequent OnMessage calls).
  Status WaitIdle();

  /// Answers a query in-process (same path the kShardQuery handler uses).
  net::KeyedQueryReply Query(const net::KeyedQuery& query) const {
    return store_.Query(query);
  }

  const ResultStore& store() const { return store_; }
  const ShardedConfig& config() const { return config_; }
  /// Construction-time validation result.
  const Status& init_status() const { return init_status_; }
  obs::Registry* registry() const { return registry_; }
  /// Shard \p s (test/diagnostic access).
  const RootShard& shard(uint32_t s) const { return *shards_[s]; }

 private:
  /// One shard's serialized task queue. Tasks run on the executor (or inline
  /// on the posting thread when no executor exists — not configurable today,
  /// but keeps the strand logic self-contained).
  struct Strand {
    std::mutex mu;
    std::condition_variable idle_cv;
    std::deque<std::function<Status()>> tasks;
    bool running = false;
  };

  /// Enqueues \p fn on shard \p s's strand, scheduling a drain if idle.
  void Post(uint32_t s, std::function<Status()> fn);
  /// Drains strand \p s until its queue is empty (runs on the executor).
  void RunStrand(uint32_t s);
  void RecordError(const Status& st);
  Status FirstError() const;
  /// Publish hook wired into every per-key root.
  void OnKeyedResult(uint32_t s, net::KeyId key, const sim::WindowOutput& out);

  ShardedConfig config_;
  transport::Transport* transport_;
  Status init_status_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  std::unique_ptr<exec::Executor> owned_executor_;
  exec::Executor* executor_ = nullptr;
  ResultStore store_;
  std::vector<std::unique_ptr<RootShard>> shards_;
  std::vector<std::unique_ptr<Strand>> strands_;
  /// Transport-level duplicate suppression over outer frames (run-loop
  /// thread only).
  net::SeqDedup dedup_;
  std::atomic<uint64_t> windows_total_{0};
  KeyedResultFn on_result_;
  sim::ResultCallback callback_;
  mutable std::mutex error_mu_;
  Status first_error_;
  obs::Counter* c_queries_;
  obs::Counter* c_query_errors_;
  obs::Counter* c_bad_frame_;
  obs::Counter* c_reply_send_failures_;
};

}  // namespace dema::shard
