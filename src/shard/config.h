#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "net/codec.h"
#include "net/keyed.h"
#include "obs/registry.h"
#include "stream/sorted_buffer.h"

namespace dema::shard {

/// \brief Configuration of a key-sharded multi-tenant Dema deployment: one
/// shard service (node 0) fronting S independent root shards, N keyed local
/// nodes (ids 1..N), and K tenant keys hashed across the shards.
struct ShardedConfig {
  /// Keyed local nodes; node ids are service = 0, locals = 1..N.
  size_t num_locals = 2;
  /// Root shards. Every shard is an independent per-key protocol instance
  /// scheduled on the service's executor; 0 is rejected by `Validate` (no
  /// silent fallback to an unsharded topology).
  uint32_t num_shards = 1;
  /// Tenant keys, dense ids 0..num_keys-1. The key universe is declared up
  /// front: every local hosts every key and ships empty windows for idle
  /// keys, so each shard's per-key root can align all locals exactly like an
  /// unsharded run.
  uint64_t num_keys = 1;
  /// Executor worker threads the shard strands run on. Must be >= 1: shards
  /// always run on the `src/exec` pool, and `exec::ExecutorOptions` silently
  /// clamps 0 to 1 — `Validate` rejects 0 instead of inheriting that
  /// fallback.
  size_t workers = 1;

  /// Window lifespan (tumbling; same for every key).
  DurationUs window_len_us = kMicrosPerSecond;
  /// Quantiles computed per key per window. Queries may ask for any subset.
  std::vector<double> quantiles = {0.5};

  // --- Dema knobs (applied to every per-key instance) ---
  uint64_t gamma = 10'000;
  bool adaptive_gamma = false;
  stream::SortMode sort_mode = stream::SortMode::kSortOnClose;
  net::EventCodec wire_codec = net::EventCodec::kFixed;

  // --- fault tolerance / corruption defense (per-key roots, PR 5 path) ---
  uint64_t root_deadline_ticks = 0;
  uint32_t root_max_retries = 3;
  uint32_t root_quarantine_strikes = 0;
  uint64_t root_probation_windows = 8;
  uint32_t root_probation_clean_windows = 2;

  // --- observability ---
  /// Shared metrics sink; per-key roots label their instruments `{shard=S}`
  /// so one registry aggregates per shard. When null the service owns one.
  obs::Registry* registry = nullptr;

  /// Caller-owned executor for the shard strands; overrides `workers` when
  /// set. Must outlive the service.
  exec::Executor* executor = nullptr;
};

/// \brief Validates \p config. Fail-fast: zero shard/key/worker/local counts
/// are configuration bugs and return `InvalidArgument` instead of silently
/// degenerating (matching the PR 2 quantile-validation convention).
Status ValidateShardedConfig(const ShardedConfig& config);

/// Node ids of the keyed local nodes (1..num_locals; the service is 0).
std::vector<NodeId> ShardLocalIds(const ShardedConfig& config);

/// Instrument label for shard \p s, e.g. "shard=3" (brace-free form consumed
/// by `DemaRootNodeOptions::instrument_label`).
std::string ShardLabel(uint32_t s);

}  // namespace dema::shard
