#include "shard/config.h"

namespace dema::shard {

Status ValidateShardedConfig(const ShardedConfig& config) {
  if (config.num_locals == 0) {
    return Status::InvalidArgument("need at least one keyed local node");
  }
  if (config.num_shards == 0) {
    return Status::InvalidArgument(
        "shard count must be at least 1 (0 is not a silent fallback to an "
        "unsharded topology)");
  }
  if (config.num_keys == 0) {
    return Status::InvalidArgument("key count must be at least 1");
  }
  if (config.workers == 0 && config.executor == nullptr) {
    return Status::InvalidArgument(
        "worker count must be at least 1 (shards run on the executor pool; "
        "0 would silently clamp to 1 inside exec::ExecutorOptions)");
  }
  if (config.window_len_us <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  if (config.quantiles.empty()) {
    return Status::InvalidArgument("need at least one quantile");
  }
  for (double q : config.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Status::InvalidArgument("quantile " + std::to_string(q) +
                                     " outside (0, 1]");
    }
  }
  return Status::OK();
}

std::vector<NodeId> ShardLocalIds(const ShardedConfig& config) {
  std::vector<NodeId> ids;
  ids.reserve(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    ids.push_back(static_cast<NodeId>(i + 1));
  }
  return ids;
}

std::string ShardLabel(uint32_t s) { return "shard=" + std::to_string(s); }

}  // namespace dema::shard
