#include "shard/sim_run.h"

namespace dema::shard {

ShardedSimHarness::ShardedSimHarness(const ShardedConfig& config,
                                     net::Network::Options net_options)
    : config_(config), network_(&clock_, net_options) {
  init_status_ = ValidateShardedConfig(config_);
  if (!init_status_.ok()) return;

  init_status_ = network_.RegisterNode(/*id=*/0);
  if (!init_status_.ok()) return;
  service_ = std::make_unique<ShardedRootService>(config_, &network_, &clock_);
  init_status_ = service_->init_status();
  if (!init_status_.ok()) return;

  for (NodeId id : ShardLocalIds(config_)) {
    init_status_ = network_.RegisterNode(id);
    if (!init_status_.ok()) return;
    KeyedLocalNodeOptions opts;
    opts.id = id;
    opts.service_id = 0;
    opts.num_shards = config_.num_shards;
    opts.num_keys = config_.num_keys;
    opts.window_len_us = config_.window_len_us;
    opts.initial_gamma = config_.gamma;
    opts.sort_mode = config_.sort_mode;
    opts.reply_codec = config_.wire_codec;
    opts.registry = service_->registry();
    locals_.push_back(
        std::make_unique<KeyedLocalNode>(opts, &network_, &clock_));
  }
}

Status ShardedSimHarness::PumpMessages() {
  net::Channel* service_inbox = network_.Inbox(0);
  bool progress = true;
  while (progress) {
    progress = false;
    while (auto msg = service_inbox->TryPop()) {
      DEMA_RETURN_NOT_OK(service_->OnMessage(*msg));
      progress = true;
    }
    // Strand barrier: candidate requests the shards produce must be on the
    // fabric before the local inboxes are examined, or a "quiescent" check
    // could race the executor.
    DEMA_RETURN_NOT_OK(service_->WaitIdle());
    for (size_t i = 0; i < locals_.size(); ++i) {
      net::Channel* inbox = network_.Inbox(static_cast<NodeId>(i + 1));
      while (auto msg = inbox->TryPop()) {
        DEMA_RETURN_NOT_OK(locals_[i]->OnMessage(*msg));
        progress = true;
      }
    }
    if (!progress && network_.delayed_in_flight() > 0) {
      progress = network_.FlushDelayed() > 0;
    }
  }
  return Status::OK();
}

Status ShardedSimHarness::Run(const KeyedWorkloadConfig& workload) {
  DEMA_RETURN_NOT_OK(init_status_);

  // One generator per (local, key): local i's stream for key k is seeded
  // `seed_base + k * kKeySeedStride + i * 7919`, matching what
  // `MakeUniformWorkload` would give local i in a single-key run seeded
  // `seed_base + k * kKeySeedStride`.
  std::vector<std::vector<std::unique_ptr<gen::StreamGenerator>>> gens(
      locals_.size());
  for (size_t i = 0; i < locals_.size(); ++i) {
    gens[i].reserve(config_.num_keys);
    for (net::KeyId key = 0; key < config_.num_keys; ++key) {
      gen::GeneratorConfig cfg;
      cfg.node = static_cast<NodeId>(i + 1);
      cfg.seed = workload.seed_base + key * kKeySeedStride + i * 7919;
      cfg.distribution = workload.distribution;
      cfg.event_rate = workload.event_rate;
      DEMA_ASSIGN_OR_RETURN(auto g, gen::StreamGenerator::Create(cfg));
      gens[i].push_back(std::move(g));
    }
  }

  outputs_by_key_.assign(config_.num_keys, {});
  // Strands publish concurrently, but always to distinct keys' (pre-sized)
  // vectors; one key's results stay on one strand, so no entry races.
  service_->SetKeyedResultCallback(
      [this](net::KeyId key, const sim::WindowOutput& out) {
        outputs_by_key_[key].push_back(out);
      });

  const bool deadlines = config_.root_deadline_ticks > 0;
  for (uint64_t w = 0; w < workload.num_windows; ++w) {
    const TimestampUs start =
        static_cast<TimestampUs>(w) * config_.window_len_us;
    const TimestampUs end = start + config_.window_len_us;
    for (size_t i = 0; i < locals_.size(); ++i) {
      for (net::KeyId key = 0; key < config_.num_keys; ++key) {
        std::vector<Event> events =
            gens[i][key]->GenerateWindow(start, config_.window_len_us);
        for (const Event& e : events) {
          DEMA_RETURN_NOT_OK(locals_[i]->OnEvent(key, e));
        }
        events_ingested_ += events.size();
      }
    }
    for (auto& local : locals_) {
      DEMA_RETURN_NOT_OK(local->OnWatermark(end));
    }
    for (auto& local : locals_) {
      DEMA_RETURN_NOT_OK(local->Quiesce());
    }
    DEMA_RETURN_NOT_OK(PumpMessages());
    if (deadlines) {
      DEMA_RETURN_NOT_OK(service_->Tick());
      DEMA_RETURN_NOT_OK(PumpMessages());
    }
  }

  const TimestampUs final_ts =
      static_cast<TimestampUs>(workload.num_windows) * config_.window_len_us;
  for (auto& local : locals_) {
    DEMA_RETURN_NOT_OK(local->OnFinish(final_ts));
  }
  DEMA_RETURN_NOT_OK(PumpMessages());
  if (deadlines) {
    service_->NoteWindowHorizon(workload.num_windows - 1);
    // Burn through the retry/degrade budget so faulty runs terminate.
    for (uint64_t t = 0; t < config_.root_deadline_ticks *
                                 (config_.root_max_retries + 2) +
                             2;
         ++t) {
      DEMA_RETURN_NOT_OK(service_->Tick());
      DEMA_RETURN_NOT_OK(PumpMessages());
      if (service_->idle()) break;
    }
  }

  const uint64_t expected = workload.num_windows * config_.num_keys;
  if (service_->windows_emitted() != expected) {
    return Status::Internal(
        "service emitted " + std::to_string(service_->windows_emitted()) +
        " per-key windows, expected " + std::to_string(expected));
  }
  if (!service_->idle()) {
    return Status::Internal("service still has pending windows after run");
  }
  return Status::OK();
}

}  // namespace dema::shard
