#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "net/keyed.h"
#include "shard/config.h"
#include "shard/sim_run.h"
#include "transport/transport.h"

namespace dema::shard {

/// First node id handed to query clients (locals are 1..N, the service is
/// 0; anything >= this is a query session).
inline constexpr NodeId kFirstQueryClientId = 1000;

/// \brief Options for the sharded TCP root (the `demactl serve --role=root
/// --shards=S` process).
struct ShardedServeOptions {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;
  /// Pre-bound, already-listening socket to adopt; -1 = bind fresh.
  int adopted_listen_fd = -1;
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  size_t inbox_capacity = 1024;
  /// Per-connection outbox bound in messages (0 = unbounded); a full outbox
  /// backpressures the sender instead of queueing without limit.
  size_t outbox_capacity = 1024;
  /// Windows every key is expected to emit (the workload horizon).
  uint64_t expected_windows = 0;
  /// After every window completed, keep answering queries for up to this
  /// long before releasing the locals; a query client's `kShutdown` frame
  /// ends the linger early. 0 = release immediately.
  DurationUs linger_us = 0;
  /// Heartbeat period for idle connections (`demactl serve
  /// --heartbeat-us`): dead query clients and locals are detected and
  /// reaped instead of holding sessions forever. 0 disables.
  DurationUs heartbeat_interval_us = 0;
  /// Silent heartbeat intervals before a peer is declared dead.
  int heartbeat_misses = 3;
  std::function<void(uint16_t)> on_listening;
};

/// \brief What the sharded TCP root measured.
struct ShardedServeReport {
  /// Per-key windows emitted (expected: expected_windows * num_keys).
  uint64_t windows_emitted = 0;
  double wall_seconds = 0;
  uint64_t queries_answered = 0;
  /// Socket traffic by message type (received + sent merged).
  std::map<net::MessageType, net::TrafficCounters> by_type;
};

/// \brief Runs the sharded root service over TCP: hosts node 0, accepts
/// keyed locals and query clients, aggregates until every key emitted
/// `expected_windows` windows — answering `kShardQuery` frames concurrently
/// the whole time — then lingers (see `linger_us`), broadcasts `kShutdown`
/// to the locals, and returns.
Result<ShardedServeReport> RunShardedTcpRoot(const ShardedConfig& config,
                                             const ShardedServeOptions& options);

/// \brief Options for one keyed TCP local process / thread.
struct ShardedTcpLocalOptions {
  std::string root_host = "127.0.0.1";
  uint16_t root_port = 0;
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  /// Per-connection outbox bound in messages (0 = unbounded).
  size_t outbox_capacity = 1024;
  /// Heartbeat period (0 disables); with `auto_reconnect` the local redials
  /// the root after a severed connection and replays unacked frames.
  DurationUs heartbeat_interval_us = 0;
  int heartbeat_misses = 3;
  bool auto_reconnect = false;
};

/// \brief What a keyed local measured.
struct ShardedTcpLocalReport {
  uint64_t events_ingested = 0;
  transport::LinkTrafficMap sent_links;
};

/// \brief Runs keyed local node \p id over TCP: dials the root, streams
/// every key's generated windows through the per-key state machines, serves
/// candidate requests, and returns after the root's `kShutdown`.
Result<ShardedTcpLocalReport> RunShardedTcpLocal(
    const ShardedConfig& config, const KeyedWorkloadConfig& workload,
    NodeId id, const ShardedTcpLocalOptions& options);

/// \brief Options for the concurrent query client (`demactl query`).
struct ShardQueryOptions {
  std::string root_host = "127.0.0.1";
  uint16_t root_port = 0;
  /// Base node id; session t (0-based) connects as id + t.
  NodeId id = kFirstQueryClientId;
  /// Keys to ask for (split round-robin across sessions; each session asks
  /// its whole slice per query).
  std::vector<net::KeyId> keys;
  /// Quantiles per key; empty = all the service computes.
  std::vector<double> quantiles;
  /// Concurrent query sessions, each on its own TCP connection + thread.
  size_t concurrency = 4;
  /// Keep polling until every asked key answers `found` with `window_id` >=
  /// this; with 0 a single query round per session suffices.
  net::WindowId until_window = 0;
  /// After success, tell the root to release the cluster (ends its linger).
  bool shutdown_root = false;
  DurationUs timeout_us = 60 * kMicrosPerSecond;
  /// Re-send the (idempotent) query when no reply arrived within this long,
  /// so a frame lost in transit costs one interval, not the session timeout.
  DurationUs resend_us = MillisUs(250);
};

/// \brief What the query client saw.
struct ShardQueryReport {
  uint64_t queries_sent = 0;
  /// Keys answered `found` in each session's final reply (sums to
  /// `keys.size()` on success).
  uint64_t keys_found = 0;
  /// Every session's final reply, in session order (for assertions).
  std::vector<net::KeyedQueryReply> final_replies;
};

/// \brief Runs \p options.concurrency concurrent query sessions against a
/// sharded TCP root and returns once every session's keys reached
/// `until_window` (or immediately after one round when it is 0).
Result<ShardQueryReport> RunShardQueryClient(const ShardQueryOptions& options);

}  // namespace dema::shard
