#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/keyed.h"
#include "shard/key.h"
#include "sim/node.h"

namespace dema::shard {

/// \brief Live per-key result state the query API answers from.
///
/// Striped by shard: each shard's strand publishes its keys' freshest window
/// result into its own stripe (one mutex per shard, so publishes never
/// contend across shards), and a query reads every stripe it touches under
/// one lock acquisition — the consistency unit is the shard. Within one
/// shard a multi-key read is a true snapshot: it can never observe key A's
/// window w+1 next to key B's window w if the shard published both for w
/// atomically before w+1. Across shards, answers may come from different
/// window frontiers (shards progress independently by design; see
/// docs/SHARDING.md).
class ResultStore {
 public:
  ResultStore(uint32_t num_shards, uint64_t num_keys,
              std::vector<double> quantiles);

  /// Publishes \p out as key \p key's freshest result (called from shard
  /// \p shard's strand). Keeps only the highest-window result per key — the
  /// query API serves live state, not history, and windows may complete out
  /// of order (an older, slower window must not clobber a newer one).
  void Publish(uint32_t shard, net::KeyId key, const sim::WindowOutput& out);

  /// Answers a multi-key, multi-quantile query. Unknown keys and
  /// unconfigured quantiles reject the whole query (error set in the reply);
  /// known keys that have not emitted a window yet answer `found = false`.
  net::KeyedQueryReply Query(const net::KeyedQuery& query) const;

  /// Latest published result for \p key, if any (test/CLI convenience).
  std::optional<sim::WindowOutput> Latest(net::KeyId key) const;

  /// Total publishes across all keys (== per-key windows emitted).
  uint64_t published_windows() const {
    return published_.load(std::memory_order_relaxed);
  }

  const std::vector<double>& quantiles() const { return quantiles_; }
  uint64_t num_keys() const { return num_keys_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    /// Monotone publish epoch (diagnostics; bumped per publish).
    uint64_t epoch = 0;
    std::unordered_map<net::KeyId, sim::WindowOutput> latest;
  };

  /// Maps the query's quantile list onto indices into `quantiles_`, or an
  /// empty vector + error message when a quantile is not configured. An
  /// empty query list resolves to all configured quantiles.
  Status ResolveQuantiles(const std::vector<double>& asked,
                          std::vector<size_t>* indices) const;

  uint32_t num_shards_;
  uint64_t num_keys_;
  std::vector<double> quantiles_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> published_{0};
};

}  // namespace dema::shard
