#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "dema/local_node.h"
#include "net/dedup.h"
#include "net/keyed.h"
#include "shard/collector.h"
#include "shard/config.h"

namespace dema::shard {

/// \brief Configuration of a keyed (multi-tenant) local node.
struct KeyedLocalNodeOptions {
  /// This node's id (1..num_locals).
  NodeId id = 1;
  /// The shard service's node id.
  NodeId service_id = 0;
  uint32_t num_shards = 1;
  uint64_t num_keys = 1;
  DurationUs window_len_us = kMicrosPerSecond;
  uint64_t initial_gamma = 10'000;
  stream::SortMode sort_mode = stream::SortMode::kSortOnClose;
  net::EventCodec reply_codec = net::EventCodec::kFixed;
  /// Shared metrics sink; the per-key locals label `local.*{node=N}` so they
  /// aggregate per hosting node. When null the mux owns one.
  obs::Registry* registry = nullptr;
  /// Optional sort+slice pool for the per-key locals (usually null: keyed
  /// windows are small, and the shard service's pool is for the root side).
  exec::Executor* executor = nullptr;
};

/// \brief A multi-tenant local node: one unmodified `DemaLocalNode` per key,
/// multiplexed onto keyed frames.
///
/// Every key's events feed that key's private window/sort/slice state
/// machine; at each watermark the synopses of all keys that closed a window
/// are drained and batched into ONE `kShardSynopsisBatch` frame per shard —
/// the per-(local, shard) batching that keeps the frame count independent of
/// the key count. Inbound keyed candidate requests and gamma updates are
/// demuxed per key, and the resulting candidate replies re-batched the same
/// way.
///
/// Not thread-safe (same contract as `DemaLocalNode`): the hosting run loop
/// serializes calls.
class KeyedLocalNode {
 public:
  /// \p transport and \p clock must outlive the node.
  KeyedLocalNode(KeyedLocalNodeOptions options,
                 transport::Transport* transport, const Clock* clock);

  /// Ingests one event for \p key. Fails on out-of-range keys (the key
  /// universe is declared in the options).
  Status OnEvent(net::KeyId key, const Event& e);

  /// Advances every key's watermark; ships all closed windows' synopses as
  /// one keyed frame per shard.
  Status OnWatermark(TimestampUs watermark_us);

  /// Ends every key's stream (empty windows included, so each per-key root
  /// can align all locals).
  Status OnFinish(TimestampUs final_watermark_us);

  /// Handles one keyed frame from the service (kShardCandidateRequest or
  /// kShardGammaUpdate; anything else is counted and dropped).
  Status OnMessage(const net::Message& outer);

  /// Blocks until every per-key async window close has shipped (no-op
  /// without an executor) and flushes the resulting frames.
  Status Quiesce();

  /// The per-key local for \p key, or nullptr out of range (test access).
  const core::DemaLocalNode* local_for(net::KeyId key) const;

  /// The registry the per-key locals record into.
  obs::Registry* registry() const { return registry_; }

 private:
  /// Outbound keyed batches accumulated during one call, keyed by
  /// (shard, inner message type); everything goes to the service.
  using OutboundMap =
      std::map<std::pair<uint32_t, net::MessageType>, net::KeyedBatch>;

  void StashCollected(net::KeyId key, OutboundMap* out);
  Status FlushOutbound(OutboundMap* out);

  KeyedLocalNodeOptions options_;
  transport::Transport* transport_;
  CollectingTransport collector_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  /// Per-key locals, indexed by key id.
  std::vector<std::unique_ptr<core::DemaLocalNode>> locals_;
  /// Cached shard of each key (hot path: one array read per event flush).
  std::vector<uint32_t> shard_of_;
  /// Transport-level duplicate suppression over outer keyed frames.
  net::SeqDedup dedup_;
  obs::Counter* c_frames_;
  obs::Counter* c_bad_frame_;
  obs::Counter* c_unknown_key_;
  obs::Counter* c_send_failures_;
};

}  // namespace dema::shard
