#include "shard/root_shard.h"

#include "shard/key.h"

namespace dema::shard {

RootShard::RootShard(uint32_t index, const ShardedConfig& config,
                     transport::Transport* transport, const Clock* clock,
                     obs::Registry* registry, KeyedResultFn on_result)
    : index_(index), transport_(transport), on_result_(std::move(on_result)) {
  const std::string suffix = "{" + ShardLabel(index_) + "}";
  c_frames_ = registry->GetCounter("shard.frames" + suffix);
  c_wrong_shard_ = registry->GetCounter("shard.wrong_shard" + suffix);
  c_unknown_key_ = registry->GetCounter("shard.unknown_key" + suffix);
  c_bad_frame_ = registry->GetCounter("shard.bad_frame" + suffix);
  c_send_failures_ = registry->GetCounter("shard.send_failures" + suffix);

  core::DemaRootNodeOptions opts;
  opts.id = 0;  // per-key traffic carries the service's node id
  opts.locals = ShardLocalIds(config);
  opts.quantiles = config.quantiles;
  opts.initial_gamma = config.gamma;
  opts.adaptive_gamma = config.adaptive_gamma;
  opts.deadline_ticks = config.root_deadline_ticks;
  opts.max_retries = config.root_max_retries;
  opts.quarantine_strikes = config.root_quarantine_strikes;
  opts.probation_windows = config.root_probation_windows;
  opts.probation_clean_windows = config.root_probation_clean_windows;
  opts.instrument_label = ShardLabel(index_);
  opts.registry = registry;

  for (net::KeyId key = 0; key < config.num_keys; ++key) {
    if (ShardOfKey(key, config.num_shards) != index_) continue;
    auto root = std::make_unique<core::DemaRootNode>(opts, &collector_, clock);
    root->SetResultCallback([this, key](const sim::WindowOutput& out) {
      if (on_result_) on_result_(key, out);
    });
    keys_.push_back(key);
    roots_.emplace(key, std::move(root));
  }
}

const core::DemaRootNode* RootShard::root_for(net::KeyId key) const {
  auto it = roots_.find(key);
  return it == roots_.end() ? nullptr : it->second.get();
}

Status RootShard::OnFrame(const net::Message& outer) {
  c_frames_->Increment();
  net::Reader r(outer.payload_bytes());
  auto batch = net::KeyedBatch::Deserialize(&r);
  if (!batch.ok()) {
    c_bad_frame_->Increment();
    return Status::OK();
  }
  if (batch->shard != index_) {
    c_wrong_shard_->Increment();
    return Status::OK();
  }
  auto inner_type = net::KeyedInnerType(outer.type);
  if (!inner_type.ok()) {
    c_bad_frame_->Increment();
    return Status::OK();
  }

  OutboundMap out;
  for (auto& entry : batch->entries) {
    auto it = roots_.find(entry.key);
    if (it == roots_.end()) {
      c_unknown_key_->Increment();
      continue;
    }
    net::Message inner;
    inner.type = *inner_type;
    inner.src = outer.src;
    inner.dst = outer.dst;
    inner.seq = 0;  // the outer frame already passed transport-level dedup
    inner.payload = std::move(entry.payload);
    inner.send_time_us = outer.send_time_us;
    DEMA_RETURN_NOT_OK(it->second->OnMessage(inner));
    StashCollected(entry.key, &out);
  }
  return FlushOutbound(&out);
}

Status RootShard::Tick() {
  OutboundMap out;
  for (net::KeyId key : keys_) {
    DEMA_RETURN_NOT_OK(roots_[key]->Tick());
    StashCollected(key, &out);
  }
  return FlushOutbound(&out);
}

void RootShard::NoteWindowHorizon(net::WindowId last) {
  for (net::KeyId key : keys_) roots_[key]->NoteWindowHorizon(last);
}

bool RootShard::idle() const {
  for (const auto& [key, root] : roots_) {
    if (!root->idle()) return false;
  }
  return true;
}

void RootShard::StashCollected(net::KeyId key, OutboundMap* out) {
  if (collector_.empty()) return;
  std::vector<net::Message> collected;
  collector_.Drain(&collected);
  for (auto& m : collected) {
    net::KeyedBatch& batch = (*out)[{m.dst, m.type}];
    batch.shard = index_;
    batch.event_count += m.event_count;
    batch.entries.push_back({key, m.TakePayload()});
  }
}

Status RootShard::FlushOutbound(OutboundMap* out) {
  for (auto& [route, batch] : *out) {
    const auto& [dst, inner_type] = route;
    auto outer_type = net::KeyedOuterType(inner_type);
    if (!outer_type.ok()) {
      // A per-key root only ever sends candidate requests and gamma updates;
      // anything else is a programming error worth failing loudly on.
      return outer_type.status();
    }
    net::Message frame = net::MakeMessage(*outer_type, /*src=*/0, dst, batch);
    Status sent = transport_->Send(std::move(frame));
    if (!sent.ok()) c_send_failures_->Increment();
  }
  out->clear();
  return Status::OK();
}

}  // namespace dema::shard
