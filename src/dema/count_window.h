#pragma once

#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "dema/slice.h"

namespace dema::core {

/// \brief Exact count-based window boundary discovery on top of Dema's
/// selection machinery.
///
/// The paper's sibling problem (Deco, EDBT'24): a *count-based* tumbling
/// window covers N consecutive events in global event-time order, but no
/// single node knows where the boundaries fall. Observation: the W-th
/// boundary is the (W·N)-th smallest *timestamp* — a rank-selection problem,
/// which is exactly what window-cut solves. Local nodes ship synopses of
/// their time-ordered windows (events arrive in time order, so no extra
/// sort); the planner runs window-cut on the time axis to find, for each
/// boundary rank, the candidate slices whose raw events pin the boundary
/// event exactly.
///
/// This class implements the planning algebra (candidate selection and exact
/// boundary resolution given fetched candidates); wiring it into a live
/// protocol mirrors the value path and is left at the library level.
class CountWindowPlanner {
 public:
  /// A resolved boundary: the count-window W covers global time-order ranks
  /// ((W)·N, (W+1)·N], and `boundary_event` is the rank-(W+1)·N event.
  struct Boundary {
    uint64_t rank = 0;
    Event boundary_event;
  };

  /// Creates a planner for count windows of \p window_size events.
  explicit CountWindowPlanner(uint64_t window_size)
      : window_size_(window_size) {}

  /// Identification step: given the flattened time-ordered slice synopses of
  /// every node (slices sorted by timestamp within each node; `first`/`last`
  /// compare by the event total order, which is timestamp-major here only if
  /// callers build synopses over time-ordered runs — see `TimeKeyed`),
  /// returns the candidate slice indices needed to resolve every boundary in
  /// the batch, plus the per-boundary selections.
  ///
  /// \p total_events is the number of events across all synopses; boundaries
  /// at ranks N, 2N, ... <= total_events are planned.
  Result<std::vector<size_t>> PlanCandidates(
      const std::vector<SliceSynopsis>& time_slices, uint64_t total_events);

  /// Calculation step: resolves every boundary given the fetched candidate
  /// events (any order; they are sorted internally by time key). Must be
  /// called after `PlanCandidates` with the events of exactly the returned
  /// candidate slices.
  Result<std::vector<Boundary>> ResolveBoundaries(
      std::vector<Event> candidate_events) const;

  /// Rewrites an event so the global total order compares timestamp-first
  /// (timestamp into the value slot). Build time-axis synopses by mapping
  /// each event through this before cutting slices, and map back with
  /// `FromTimeKeyed`.
  static Event TimeKeyed(const Event& e) {
    Event out = e;
    out.value = static_cast<double>(e.timestamp);
    return out;
  }

  /// The boundary ranks planned by the last `PlanCandidates` call.
  const std::vector<uint64_t>& planned_ranks() const { return ranks_; }

 private:
  uint64_t window_size_;
  std::vector<uint64_t> ranks_;
  std::vector<uint64_t> below_counts_;  // per rank, from window-cut
};

}  // namespace dema::core
