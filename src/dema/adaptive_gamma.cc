#include "dema/adaptive_gamma.h"

#include <algorithm>
#include <cmath>

namespace dema::core {

double GammaCostModel(uint64_t global_size, uint64_t num_candidate_slices,
                      uint64_t gamma) {
  if (gamma < 2) gamma = 2;
  double identification = 2.0 * static_cast<double>(global_size) /
                          static_cast<double>(gamma);
  double calculation = static_cast<double>(num_candidate_slices) *
                       (static_cast<double>(gamma) - 2.0);
  return identification + calculation;
}

uint64_t OptimalGamma(uint64_t global_size, uint64_t num_candidate_slices) {
  if (global_size == 0) return 2;
  if (num_candidate_slices == 0) num_candidate_slices = 1;
  double opt = std::sqrt(2.0 * static_cast<double>(global_size) /
                         static_cast<double>(num_candidate_slices));
  uint64_t g = static_cast<uint64_t>(std::llround(opt));
  // The continuous arg-min sits between two integers; pick the cheaper one.
  double here = GammaCostModel(global_size, num_candidate_slices, g);
  double up = GammaCostModel(global_size, num_candidate_slices, g + 1);
  if (up < here) ++g;
  if (g >= 3) {
    double down = GammaCostModel(global_size, num_candidate_slices, g - 1);
    if (down < GammaCostModel(global_size, num_candidate_slices, g)) --g;
  }
  return std::max<uint64_t>(2, g);
}

AdaptiveGammaController::AdaptiveGammaController(uint64_t initial_gamma,
                                                 GammaControllerOptions options)
    : options_(options), current_(0) {
  if (options_.min_gamma < 2) options_.min_gamma = 2;
  if (options_.max_gamma < options_.min_gamma) {
    options_.max_gamma = options_.min_gamma;
  }
  options_.smoothing = std::clamp(options_.smoothing, 0.01, 1.0);
  current_ = Clamp(initial_gamma);
}

uint64_t AdaptiveGammaController::Clamp(uint64_t gamma) const {
  return std::clamp(gamma, options_.min_gamma, options_.max_gamma);
}

uint64_t AdaptiveGammaController::Observe(uint64_t global_size,
                                          uint64_t num_candidate_slices) {
  if (global_size == 0) return current_;
  uint64_t target = Clamp(OptimalGamma(global_size, num_candidate_slices));
  double blended = (1.0 - options_.smoothing) * static_cast<double>(current_) +
                   options_.smoothing * static_cast<double>(target);
  uint64_t next = Clamp(static_cast<uint64_t>(std::llround(blended)));
  if (next == current_ && target != current_) {
    // Rounding deadlock guard: with smoothing < 0.5 the EWMA rounds back to
    // current_ whenever |target - current_| <= 1/(2*smoothing), which would
    // park γ a few steps from the cost-model optimum forever. Always step at
    // least one unit toward the target.
    next = target > current_ ? current_ + 1 : current_ - 1;
  }
  current_ = next;
  return current_;
}

}  // namespace dema::core
