#include "dema/validate.h"

#include <cmath>

namespace dema::core {

namespace {

bool FiniteValue(const Event& e) { return std::isfinite(e.value); }

}  // namespace

const char* ValidateSynopsisBatch(const SynopsisBatch& batch, NodeId src,
                                  bool strict) {
  if (batch.node != src) return "node_mismatch";
  if (batch.gamma_used < 2) return "bad_gamma";
  const uint64_t gamma = batch.gamma_used;
  if (strict) {
    const uint64_t expected_slices =
        (batch.local_window_size + gamma - 1) / gamma;
    if (batch.slices.size() != expected_slices) return "slice_count";
  }
  uint64_t total = 0;
  for (size_t i = 0; i < batch.slices.size(); ++i) {
    const SliceSynopsis& s = batch.slices[i];
    if (s.node != batch.node) return "node_mismatch";
    if (s.index != i) return "slice_index";
    if (s.count == 0) return "empty_slice";
    if (!FiniteValue(s.first) || !FiniteValue(s.last)) return "bad_value";
    if (s.last < s.first) return "slice_bounds";
    if (strict) {
      // Every slice but the trailing one is exactly gamma events; the
      // trailer holds the remainder (1..gamma). `SliceEventRange` encodes
      // the same cut.
      const uint64_t expected_count =
          i + 1 < batch.slices.size()
              ? gamma
              : batch.local_window_size - (batch.slices.size() - 1) * gamma;
      if (s.count != expected_count) return "slice_size";
      if (i > 0 && s.first < batch.slices[i - 1].last) return "slice_overlap";
    }
    total += s.count;
  }
  if (total != batch.local_window_size) return "size_mismatch";
  return nullptr;
}

const char* ValidateCandidateReply(const CandidateReply& reply, NodeId src,
                                   const std::vector<SliceSynopsis>& requested,
                                   bool strict) {
  if (reply.node != src) return "node_mismatch";
  uint64_t expected = 0;
  for (const SliceSynopsis& s : requested) expected += s.count;
  if (reply.events.size() != expected) return "run_size";
  for (size_t i = 0; i < reply.events.size(); ++i) {
    if (!FiniteValue(reply.events[i])) return "bad_value";
    if (i > 0 && reply.events[i] < reply.events[i - 1]) return "unsorted_run";
  }
  // Segment the run by the requested slices' declared counts and hold each
  // segment to its synopsis: boundary events equal (first, last) exactly and
  // everything in between stays inside the declared range. A reply that
  // disagrees with the synopsis the window-cut was computed from would shift
  // ranks silently — reject it here instead. Only flat topologies keep the
  // per-slice segmentation; a relay merges its children's slices into one
  // run, so in tree mode the structural checks above are the whole contract.
  if (strict) {
    size_t at = 0;
    for (const SliceSynopsis& s : requested) {
      const Event& lo = reply.events[at];
      const Event& hi = reply.events[at + s.count - 1];
      if (lo != s.first || hi != s.last) return "bounds_mismatch";
      at += s.count;
    }
  }
  return nullptr;
}

}  // namespace dema::core
