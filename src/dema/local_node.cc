#include "dema/local_node.h"

#include <algorithm>
#include <chrono>

#include "dema/slice.h"

namespace dema::core {

DemaLocalNode::DemaLocalNode(DemaLocalNodeOptions options, transport::Transport* transport,
                             const Clock* clock)
    : options_(options),
      transport_(transport),
      clock_(clock),
      registry_(options_.registry),
      windows_(stream::WindowSpec{options.window_len_us, options.window_slide_us},
               options.sort_mode) {
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  const std::string label = "{node=" + std::to_string(options_.id) + "}";
  c_events_ingested_ = registry_->GetCounter("local.events_ingested" + label);
  c_windows_shipped_ = registry_->GetCounter("local.windows_shipped" + label);
  c_send_failures_ = registry_->GetCounter("local.send_failures" + label);
  c_duplicates_ignored_ = registry_->GetCounter("local.duplicates_ignored" + label);
  g_retained_windows_ = registry_->GetGauge("local.retained_windows" + label);
  g_retained_events_ = registry_->GetGauge("local.retained_events" + label);
  g_retained_events_peak_ =
      registry_->GetGauge("local.retained_events_peak" + label);
  oldest_known_gamma_ = std::max<uint64_t>(2, options_.initial_gamma);
  gamma_schedule_[0] = oldest_known_gamma_;
  if (options_.executor != nullptr) {
    // Closed windows come back unsorted; the submitted task owns the sort.
    windows_.set_defer_sort(true);
  }
}

void DemaLocalNode::UpdateRetainedGauges() {
  peak_retained_events_ = std::max(peak_retained_events_, retained_event_count_);
  g_retained_windows_->Set(static_cast<int64_t>(retained_.size()));
  g_retained_events_->Set(static_cast<int64_t>(retained_event_count_));
  g_retained_events_peak_->Set(static_cast<int64_t>(peak_retained_events_));
}

uint64_t DemaLocalNode::GammaForWindow(net::WindowId id) const {
  // Latest schedule entry with effective_from <= id. Entries below the emit
  // frontier get pruned, so a historic id may predate every remaining entry;
  // answer with the oldest-known effective γ — never with a *future* entry,
  // which the root never associated with that window.
  auto it = gamma_schedule_.upper_bound(id);
  if (it == gamma_schedule_.begin()) return oldest_known_gamma_;
  --it;
  return it->second;
}

Status DemaLocalNode::OnEvent(const Event& e) {
  c_events_ingested_->Increment();
  windows_.OnEvent(e);
  return Status::OK();
}

Status DemaLocalNode::OnWatermark(TimestampUs watermark_us) {
  auto closed = windows_.AdvanceWatermark(watermark_us);
  net::WindowId up_to =
      windows_.assigner().ClosedUpTo(std::max<TimestampUs>(0, watermark_us));
  return EmitClosedWindows(std::move(closed), up_to);
}

Status DemaLocalNode::OnFinish(TimestampUs final_watermark_us) {
  DEMA_RETURN_NOT_OK(OnWatermark(final_watermark_us));
  return FlushPendingCloses();
}

Status DemaLocalNode::EmitClosedWindows(std::vector<stream::ClosedWindow> closed,
                                        net::WindowId up_to_exclusive) {
  // WindowManager yields only windows that held events; interleave empty
  // windows so the root receives a contiguous id sequence from every node.
  size_t next_closed = 0;
  while (next_window_to_emit_ < up_to_exclusive) {
    net::WindowId id = next_window_to_emit_++;
    std::vector<Event> events;
    bool is_sorted = true;
    if (next_closed < closed.size() && closed[next_closed].id == id) {
      events = std::move(closed[next_closed].sorted_events);
      is_sorted = closed[next_closed].is_sorted;
      ++next_closed;
    }
    if (options_.executor != nullptr) {
      DEMA_RETURN_NOT_OK(SubmitWindowClose(id, std::move(events), is_sorted));
    } else {
      DEMA_RETURN_NOT_OK(EmitWindow(id, std::move(events)));
    }
  }
  // Ship whatever the pool already finished, in order, without waiting.
  return DrainPreparedCloses(/*block=*/false);
}

Status DemaLocalNode::EmitWindow(net::WindowId id, std::vector<Event> sorted) {
  PreparedWindow prepared;
  prepared.id = id;
  prepared.gamma = GammaForWindow(id);
  if (!sorted.empty()) {
    DEMA_ASSIGN_OR_RETURN(prepared.slices,
                          CutIntoSlices(sorted, options_.id, prepared.gamma));
    prepared.sorted = std::move(sorted);
  }
  return ShipPrepared(std::move(prepared));
}

Status DemaLocalNode::SubmitWindowClose(net::WindowId id,
                                        std::vector<Event> events,
                                        bool is_sorted) {
  // γ resolves against the submission frontier — exactly when the inline
  // path would have resolved it — so threaded and inline runs cut the same
  // slices. Empty windows skip the pool with an already-satisfied future,
  // keeping the completion buffer strictly sequenced by window id.
  const uint64_t gamma = GammaForWindow(id);
  if (events.empty()) {
    std::promise<PreparedWindow> ready;
    PreparedWindow prepared;
    prepared.id = id;
    prepared.gamma = gamma;
    ready.set_value(std::move(prepared));
    inflight_closes_.push_back(ready.get_future());
    return Status::OK();
  }
  const NodeId node = options_.id;
  inflight_closes_.push_back(options_.executor->Submit(
      [id, gamma, node, is_sorted, events = std::move(events)]() mutable {
        PreparedWindow prepared;
        prepared.id = id;
        prepared.gamma = gamma;
        if (!is_sorted) std::sort(events.begin(), events.end());
        auto slices = CutIntoSlices(events, node, gamma);
        if (!slices.ok()) {
          prepared.status = slices.status();
          return prepared;
        }
        prepared.slices = std::move(slices).MoveValueUnsafe();
        prepared.sorted = std::move(events);
        return prepared;
      }));
  return Status::OK();
}

Status DemaLocalNode::DrainPreparedCloses(bool block) {
  while (!inflight_closes_.empty()) {
    std::future<PreparedWindow>& front = inflight_closes_.front();
    if (!block && front.wait_for(std::chrono::seconds(0)) !=
                      std::future_status::ready) {
      return Status::OK();  // front still cooking; later windows must wait
    }
    PreparedWindow prepared = front.get();
    inflight_closes_.pop_front();
    DEMA_RETURN_NOT_OK(ShipPrepared(std::move(prepared)));
  }
  return Status::OK();
}

Status DemaLocalNode::FlushPendingCloses() {
  return DrainPreparedCloses(/*block=*/true);
}

Status DemaLocalNode::ShipPrepared(PreparedWindow prepared) {
  DEMA_RETURN_NOT_OK(prepared.status);
  SynopsisBatch batch;
  batch.window_id = prepared.id;
  batch.node = options_.id;
  batch.local_window_size = prepared.sorted.size();
  batch.gamma_used =
      static_cast<uint32_t>(std::min<uint64_t>(prepared.gamma, UINT32_MAX));
  batch.close_time_us = clock_->NowUs();
  batch.slices = std::move(prepared.slices);
  if (!prepared.sorted.empty()) {
    retained_event_count_ += prepared.sorted.size();
    retained_.emplace(prepared.id,
                      RetainedWindow{prepared.gamma, std::move(prepared.sorted)});
    UpdateRetainedGauges();
  }
  DEMA_RETURN_NOT_OK(transport_->Send(net::MakeMessage(
      net::MessageType::kSynopsisBatch, options_.id, options_.root_id, batch)));
  c_windows_shipped_->Increment();
  // Old gamma schedule entries below the emitted frontier can be pruned,
  // keeping exactly one entry at-or-below it.
  auto keep = gamma_schedule_.upper_bound(next_window_to_emit_);
  if (keep != gamma_schedule_.begin()) --keep;
  gamma_schedule_.erase(gamma_schedule_.begin(), keep);
  return Status::OK();
}

Status DemaLocalNode::ResyncGamma() {
  GammaSyncRequest sync;
  sync.node = options_.id;
  return transport_->Send(net::MakeMessage(net::MessageType::kGammaSyncRequest,
                                           options_.id, options_.root_id, sync));
}

Status DemaLocalNode::OnMessage(const net::Message& msg) {
  if (dedup_.IsDuplicate(msg.src, msg.seq)) {
    // Transport-level retransmission (same sequence number): absorb it
    // before it reaches the protocol handlers. Root-driven retries use fresh
    // sequence numbers and pass through.
    c_duplicates_ignored_->Increment();
    return Status::OK();
  }
  net::Reader r(msg.payload_bytes());
  switch (msg.type) {
    case net::MessageType::kCandidateRequest: {
      DEMA_ASSIGN_OR_RETURN(auto req, CandidateRequest::Deserialize(&r));
      return HandleCandidateRequest(req);
    }
    case net::MessageType::kGammaUpdate: {
      DEMA_ASSIGN_OR_RETURN(auto update, GammaUpdate::Deserialize(&r));
      return HandleGammaUpdate(update);
    }
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("local node got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status DemaLocalNode::HandleCandidateRequest(const CandidateRequest& req) {
  if (req.slice_indices.empty()) {
    // Release: the root needs nothing (more) from this window.
    auto rit = retained_.find(req.window_id);
    if (rit != retained_.end()) {
      retained_event_count_ -= rit->second.sorted.size();
      retained_.erase(rit);
      UpdateRetainedGauges();
    }
    served_.erase(req.window_id);
    return Status::OK();
  }
  auto it = retained_.find(req.window_id);
  bool from_served = false;
  if (it == retained_.end()) {
    // The root retries a request when a reply goes missing in flight; an
    // already-served window sits in the bounded served ring for exactly this
    // case and is served again without being re-retained.
    it = served_.find(req.window_id);
    from_served = true;
    if (it == served_.end()) {
      if (options_.tolerate_duplicates && req.window_id < next_window_to_emit_) {
        return Status::OK();  // retransmitted request for a released window
      }
      return Status::NotFound("candidate request for unknown window " +
                              std::to_string(req.window_id));
    }
  }
  const std::vector<Event>& sorted = it->second.sorted;
  uint64_t gamma = it->second.gamma;

  CandidateReply reply;
  reply.window_id = req.window_id;
  reply.node = options_.id;
  reply.codec = options_.reply_codec;
  // Requested slices are ascending, disjoint index ranges of the sorted
  // window, so appending them in order keeps the reply sorted.
  for (uint32_t index : req.slice_indices) {
    auto [begin, end] = SliceEventRange(sorted.size(), gamma, index);
    if (begin >= end) {
      return Status::OutOfRange("slice index " + std::to_string(index) +
                                " outside window " + std::to_string(req.window_id));
    }
    reply.events.insert(reply.events.end(), sorted.begin() + begin,
                        sorted.begin() + end);
  }
  // Release the window only once the reply is actually on the wire: a
  // transient send failure must not lose the retained events, or the root
  // can never complete this window (the retransmitted request would hit the
  // released-window path above).
  Status sent = transport_->Send(net::MakeMessage(net::MessageType::kCandidateReply,
                                                  options_.id, options_.root_id, reply));
  if (!sent.ok()) {
    c_send_failures_->Increment();
    return sent;
  }
  if (!from_served) {
    // Move to the served ring (oldest evicted) so a retried request after a
    // lost reply finds the events again instead of the released-window path.
    retained_event_count_ -= it->second.sorted.size();
    if (options_.served_window_cap > 0) {
      served_.emplace(req.window_id, std::move(it->second));
      while (served_.size() > options_.served_window_cap) {
        served_.erase(served_.begin());
      }
    }
    retained_.erase(it);
    UpdateRetainedGauges();
  }
  return Status::OK();
}

namespace {
/// Checkpoint framing: magic + version guard against foreign blobs.
/// Version 2 added the oldest-known effective γ after the schedule entries.
constexpr uint32_t kCheckpointMagic = 0xDE3AC4B1;
constexpr uint8_t kCheckpointVersion = 2;
}  // namespace

void DemaLocalNode::Checkpoint(net::Writer* w) const {
  w->PutU32(kCheckpointMagic);
  w->PutU8(kCheckpointVersion);
  w->PutU32(options_.id);
  w->PutU64(next_window_to_emit_);
  w->PutU64(c_events_ingested_->Value());
  w->PutU32(static_cast<uint32_t>(gamma_schedule_.size()));
  for (const auto& [from, gamma] : gamma_schedule_) {
    w->PutU64(from);
    w->PutU64(gamma);
  }
  w->PutU64(oldest_known_gamma_);
  w->PutU32(static_cast<uint32_t>(retained_.size()));
  for (const auto& [id, window] : retained_) {
    w->PutU64(id);
    w->PutU64(window.gamma);
    net::EncodeEvents(w, window.sorted, net::EventCodec::kCompact,
                      /*sorted_hint=*/true);
  }
  windows_.SerializeTo(w);
}

Status DemaLocalNode::Restore(net::Reader* r) {
  uint32_t magic = 0;
  uint8_t version = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::SerializationError("not a Dema local-node checkpoint");
  }
  DEMA_RETURN_NOT_OK(r->GetU8(&version));
  if (version != kCheckpointVersion) {
    return Status::SerializationError("unsupported checkpoint version " +
                                      std::to_string(version));
  }
  uint32_t node_id = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&node_id));
  if (node_id != options_.id) {
    return Status::InvalidArgument("checkpoint belongs to node " +
                                   std::to_string(node_id) + ", this is node " +
                                   std::to_string(options_.id));
  }
  DEMA_RETURN_NOT_OK(r->GetU64(&next_window_to_emit_));
  uint64_t events_ingested = 0;
  DEMA_RETURN_NOT_OK(r->GetU64(&events_ingested));
  if (events_ingested > c_events_ingested_->Value()) {
    c_events_ingested_->Increment(events_ingested - c_events_ingested_->Value());
  }
  uint32_t schedule_entries = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&schedule_entries));
  gamma_schedule_.clear();
  for (uint32_t i = 0; i < schedule_entries; ++i) {
    uint64_t from = 0, gamma = 0;
    DEMA_RETURN_NOT_OK(r->GetU64(&from));
    DEMA_RETURN_NOT_OK(r->GetU64(&gamma));
    if (gamma < 2) return Status::SerializationError("gamma below 2");
    gamma_schedule_[from] = gamma;
  }
  if (gamma_schedule_.empty()) {
    return Status::SerializationError("checkpoint without gamma schedule");
  }
  DEMA_RETURN_NOT_OK(r->GetU64(&oldest_known_gamma_));
  if (oldest_known_gamma_ < 2) {
    return Status::SerializationError("oldest-known gamma below 2");
  }
  uint32_t retained_count = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&retained_count));
  retained_.clear();
  retained_event_count_ = 0;
  for (uint32_t i = 0; i < retained_count; ++i) {
    uint64_t id = 0;
    RetainedWindow window;
    DEMA_RETURN_NOT_OK(r->GetU64(&id));
    DEMA_RETURN_NOT_OK(r->GetU64(&window.gamma));
    DEMA_RETURN_NOT_OK(net::DecodeEvents(r, &window.sorted));
    retained_event_count_ += window.sorted.size();
    retained_.emplace(static_cast<net::WindowId>(id), std::move(window));
  }
  UpdateRetainedGauges();
  return windows_.RestoreFrom(r);
}

Status DemaLocalNode::HandleGammaUpdate(const GammaUpdate& update) {
  // Never rewrite history: the schedule only changes for windows this node
  // has not shipped yet.
  net::WindowId from = std::max(update.effective_from, next_window_to_emit_);
  gamma_schedule_[from] = std::max<uint64_t>(2, update.gamma);
  return Status::OK();
}

}  // namespace dema::core
