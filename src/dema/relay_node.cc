#include "dema/relay_node.h"

#include <algorithm>

#include "stream/merge.h"

namespace dema::core {

DemaRelayNode::DemaRelayNode(DemaRelayNodeOptions options, transport::Transport* transport,
                             const Clock* clock)
    : options_(std::move(options)), transport_(transport), clock_(clock) {
  for (size_t i = 0; i < options_.children.size(); ++i) {
    child_index_[options_.children[i]] = i;
  }
}

Status DemaRelayNode::OnMessage(const net::Message& msg) {
  net::Reader r(msg.payload_bytes());
  switch (msg.type) {
    case net::MessageType::kSynopsisBatch: {
      DEMA_ASSIGN_OR_RETURN(auto batch, SynopsisBatch::Deserialize(&r));
      return HandleChildSynopsis(batch);
    }
    case net::MessageType::kCandidateRequest: {
      DEMA_ASSIGN_OR_RETURN(auto request, CandidateRequest::Deserialize(&r));
      return HandleParentRequest(request);
    }
    case net::MessageType::kCandidateReply: {
      DEMA_ASSIGN_OR_RETURN(auto reply, CandidateReply::Deserialize(&r));
      return HandleChildReply(reply);
    }
    case net::MessageType::kGammaUpdate:
      return HandleGammaUpdate(msg);
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("relay got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status DemaRelayNode::HandleChildSynopsis(const SynopsisBatch& batch) {
  auto idx_it = child_index_.find(batch.node);
  if (idx_it == child_index_.end()) {
    return Status::InvalidArgument("synopsis from unknown child " +
                                   std::to_string(batch.node));
  }
  PendingUp& w = pending_up_[batch.window_id];
  if (w.child_reported.empty()) {
    w.child_reported.assign(options_.children.size(), false);
  }
  if (w.child_reported[idx_it->second]) {
    return Status::AlreadyExists("duplicate child synopsis");
  }
  w.child_reported[idx_it->second] = true;
  ++w.children_received;
  w.combined_size += batch.local_window_size;
  w.last_close_time_us = std::max(w.last_close_time_us, batch.close_time_us);
  if (w.gamma_used == 0) w.gamma_used = batch.gamma_used;
  for (const SliceSynopsis& s : batch.slices) {
    SliceSynopsis rewritten = s;
    rewritten.node = options_.id;
    rewritten.index = static_cast<uint32_t>(w.slices.size());
    w.slices.push_back(rewritten);
    w.origin.emplace_back(batch.node, s.index);
  }
  if (w.children_received < options_.children.size()) return Status::OK();

  // All children in: forward one combined batch upward and remember the
  // slice origins until the parent's candidate request arrives.
  SynopsisBatch combined;
  combined.window_id = batch.window_id;
  combined.node = options_.id;
  combined.local_window_size = w.combined_size;
  combined.gamma_used = w.gamma_used;
  combined.close_time_us = w.last_close_time_us;
  combined.slices = std::move(w.slices);
  if (!combined.slices.empty()) {
    forwarded_.emplace(batch.window_id, std::move(w.origin));
  }
  pending_up_.erase(batch.window_id);
  return transport_->Send(net::MakeMessage(net::MessageType::kSynopsisBatch,
                                         options_.id, options_.parent, combined));
}

Status DemaRelayNode::HandleParentRequest(const CandidateRequest& request) {
  auto it = forwarded_.find(request.window_id);
  if (it == forwarded_.end()) {
    if (request.slice_indices.empty()) return Status::OK();  // release of nothing
    return Status::NotFound("candidate request for unknown window " +
                            std::to_string(request.window_id));
  }
  const auto& origin = it->second;

  // Split the parent's request by owning child; untouched children with
  // retained windows get empty (release) requests.
  std::map<NodeId, std::vector<uint32_t>> per_child;
  for (uint32_t relay_index : request.slice_indices) {
    if (relay_index >= origin.size()) {
      return Status::OutOfRange("relay slice index out of range");
    }
    auto [child, child_index] = origin[relay_index];
    per_child[child].push_back(child_index);
  }
  // Children that contributed slices this window (they retain events).
  std::map<NodeId, bool> contributed;
  for (const auto& [child, child_index] : origin) {
    (void)child_index;
    contributed[child] = true;
  }

  PendingDown down;
  for (const auto& [child, has] : contributed) {
    (void)has;
    CandidateRequest child_request;
    child_request.window_id = request.window_id;
    auto pc = per_child.find(child);
    if (pc != per_child.end()) {
      // Child slice indices ascend because the parent's indices ascend and
      // re-indexing preserved per-child order — but sort defensively.
      std::sort(pc->second.begin(), pc->second.end());
      child_request.slice_indices = pc->second;
      ++down.expected_replies;
    }
    DEMA_RETURN_NOT_OK(transport_->Send(net::MakeMessage(
        net::MessageType::kCandidateRequest, options_.id, child, child_request)));
  }
  forwarded_.erase(it);
  if (down.expected_replies > 0) {
    pending_down_.emplace(request.window_id, std::move(down));
  }
  return Status::OK();
}

Status DemaRelayNode::HandleChildReply(const CandidateReply& reply) {
  auto it = pending_down_.find(reply.window_id);
  if (it == pending_down_.end()) {
    return Status::NotFound("child reply for unknown window " +
                            std::to_string(reply.window_id));
  }
  PendingDown& down = it->second;
  down.runs.push_back(reply.events);
  if (down.runs.size() < down.expected_replies) return Status::OK();

  // Children's replies are sorted runs over disjoint event sets; merge them
  // so the upward reply is one sorted run, as the parent expects.
  CandidateReply combined;
  combined.window_id = reply.window_id;
  combined.node = options_.id;
  combined.events = stream::MergeSortedRuns(std::move(down.runs));
  pending_down_.erase(it);
  return transport_->Send(net::MakeMessage(net::MessageType::kCandidateReply,
                                         options_.id, options_.parent, combined));
}

Status DemaRelayNode::HandleGammaUpdate(const net::Message& msg) {
  for (NodeId child : options_.children) {
    net::Message forward = msg;
    forward.src = options_.id;
    forward.dst = child;
    DEMA_RETURN_NOT_OK(transport_->Send(std::move(forward)));
  }
  return Status::OK();
}

}  // namespace dema::core
