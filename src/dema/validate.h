#pragma once

#include <cstdint>
#include <vector>

#include "dema/protocol.h"
#include "dema/slice.h"

namespace dema::core {

/// \brief Strict content validation of inbound Dema protocol payloads.
///
/// Wire decoding only proves a payload is *parseable*; these checks prove it
/// is *protocol-consistent* before the root lets it near the window-cut or
/// the quantile. Each validator returns `nullptr` when the payload is clean,
/// or a short stable reason slug (e.g. "slice_bounds") otherwise — the root
/// feeds the slug straight into its `dema.rejected{reason=}` counter and
/// drops the payload instead of poisoning the answer.
///
/// The rules are exactly the invariants an honest local upholds by
/// construction (see `CutIntoSlices` and `DemaLocalNode`), so a rejection is
/// always evidence of corruption or misbehaviour, never a false positive.

/// Validates a synopsis batch from envelope sender \p src. Always checked:
///  - the declared node matches the envelope sender (and every slice's node
///    matches the batch's);
///  - `gamma_used` >= 2 (the paper's minimum slice factor);
///  - slice indices are 0..n-1 ascending;
///  - each slice has `count` >= 1, `first` <= `last`, finite bound values;
///  - the slice counts sum to `local_window_size`.
/// With \p strict (flat topologies, where the sender cut one sorted local
/// window itself — a relay's combined batch legitimately interleaves its
/// children's cuts):
///  - the slice count equals ceil(local_window_size / gamma_used);
///  - every non-trailing slice carries exactly gamma_used events;
///  - consecutive slices do not overlap (`slices[i].last` <=
///    `slices[i+1].first` — slices partition a sorted window).
/// Returns nullptr when valid, else the rejection reason slug.
const char* ValidateSynopsisBatch(const SynopsisBatch& batch, NodeId src,
                                  bool strict);

/// Validates a candidate reply from envelope sender \p src against the
/// synopses the root accepted (\p requested, the synopses of the slices it
/// asked this node for, in ascending index order). Always checked:
///  - the declared node matches the envelope sender;
///  - the event count equals the sum of the requested slices' declared
///    counts;
///  - events are sorted by the global event order with finite values.
/// With \p strict (flat topologies; a relay merges its children's slices
/// into one run, which reorders events across slice segments):
///  - each requested slice's events fall inside that slice's declared
///    [first, last] synopsis bounds, with the boundary events matching them
///    exactly.
/// Returns nullptr when valid, else the rejection reason slug.
const char* ValidateCandidateReply(const CandidateReply& reply, NodeId src,
                                   const std::vector<SliceSynopsis>& requested,
                                   bool strict);

}  // namespace dema::core
