#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "dema/protocol.h"
#include "exec/executor.h"
#include "net/dedup.h"
#include "obs/registry.h"
#include "transport/transport.h"
#include "sim/node.h"
#include "stream/window_manager.h"

namespace dema::core {

/// \brief Configuration of a Dema local node.
struct DemaLocalNodeOptions {
  /// This node's id.
  NodeId id = 1;
  /// The root node's id.
  NodeId root_id = 0;
  /// Window lifespan (same on every node).
  DurationUs window_len_us = kMicrosPerSecond;
  /// Slide step; 0 (default) or == window_len_us gives the paper's tumbling
  /// windows, smaller values give overlapping sliding windows — each window
  /// id still runs the identification/calculation protocol independently.
  DurationUs window_slide_us = 0;
  /// Slice factor until the root broadcasts an update.
  uint64_t initial_gamma = 10'000;
  /// How local windows are kept sorted.
  stream::SortMode sort_mode = stream::SortMode::kSortOnClose;
  /// Tolerate at-least-once delivery: a candidate request for an
  /// already-released window is treated as a retransmission and ignored.
  bool tolerate_duplicates = true;
  /// Wire encoding for candidate replies.
  net::EventCodec reply_codec = net::EventCodec::kFixed;
  /// Recently served windows kept around (bounded ring) so a root retry after
  /// a lost reply can be re-served instead of hitting the released-window
  /// path. 0 disables re-serving (windows drop on first successful reply).
  size_t served_window_cap = 4;
  /// Metrics sink for the `local.*{node=N}` instruments. When null, the node
  /// owns a private registry (reachable via `registry()`). Must outlive the
  /// node when provided.
  obs::Registry* registry = nullptr;
  /// Worker pool for closed-window sort+slice. When set, each closed window
  /// is prepared asynchronously so ingest never blocks on the O(n log n)
  /// close-time work; synopses still ship in window-id order (sequenced
  /// completion buffer). When null (default), windows are prepared inline on
  /// the calling thread — output is byte-identical either way. Must outlive
  /// the node when provided; may be shared between nodes.
  exec::Executor* executor = nullptr;
};

/// \brief Dema's edge-side node (Sections 3.1, 3.3).
///
/// Sorts each closed local window, cuts it into γ-sized slices, ships only
/// the slice synopses to the root, and retains the window's events until the
/// root's candidate request arrives — at which point it replies with the
/// requested slices' events and drops the window. γ updates from the root
/// take effect per window id.
class DemaLocalNode final : public sim::LocalNodeLogic {
 public:
  /// \p transport and \p clock must outlive the node.
  DemaLocalNode(DemaLocalNodeOptions options, transport::Transport* transport,
                const Clock* clock);

  Status OnEvent(const Event& e) override;
  Status OnWatermark(TimestampUs watermark_us) override;
  Status OnFinish(TimestampUs final_watermark_us) override;
  Status OnMessage(const net::Message& msg) override;

  /// Slice factor that would apply to window \p id right now. For historic
  /// ids older than every schedule entry (possible after pruning or restore),
  /// returns the oldest-known effective γ rather than a future entry's value.
  uint64_t GammaForWindow(net::WindowId id) const;

  /// Windows currently retained for candidate serving (memory accounting).
  size_t retained_windows() const { return retained_.size(); }

  /// Events ingested so far.
  uint64_t events_ingested() const { return c_events_ingested_->Value(); }

  /// The registry this node records into (the options-provided one, or the
  /// node's own private registry).
  obs::Registry* registry() const { return registry_; }

  /// Blocks until every executor-submitted window close has been prepared
  /// and its synopsis shipped (no-op without an executor or when nothing is
  /// in flight). Call before `Checkpoint` — a snapshot must not race
  /// in-flight closes — and at end of stream. Idempotent.
  Status FlushPendingCloses();

  /// Driver-visible alias for `FlushPendingCloses` (see `LocalNodeLogic`).
  Status Quiesce() override { return FlushPendingCloses(); }

  /// Asks the root for the current slice factor. Call after `Restore`: the
  /// node may have missed γ broadcasts while it was down, and cutting the
  /// next windows with a stale factor skews the cost model until the next
  /// regular broadcast happens to arrive.
  Status ResyncGamma();

  /// Serializes the node's complete mutable state — open window buffers,
  /// watermark, retained (shipped but unreleased) windows, γ schedule, and
  /// the emission frontier — so a restarted edge device can resume without
  /// violating the protocol (checkpoint/recovery support).
  void Checkpoint(net::Writer* w) const;

  /// Replaces this node's state with a `Checkpoint` snapshot taken by a node
  /// with the same options. Fails (leaving the node unusable) on corrupt or
  /// incompatible snapshots.
  Status Restore(net::Reader* r);

 private:
  /// One window's close-time work product: everything a worker computes off
  /// the ingest thread, sequenced back into window-id order before shipping.
  struct PreparedWindow {
    net::WindowId id = 0;
    uint64_t gamma = 0;
    std::vector<Event> sorted;
    std::vector<SliceSynopsis> slices;
    /// Slice-cut failure, surfaced when the window ships.
    Status status;
  };

  /// Ships synopses for every closed window id in [next_window_to_emit_,
  /// up_to] — including empty windows — and retains their events. With an
  /// executor, submits the sort+slice per window and drains whatever has
  /// completed (in id order) without blocking.
  Status EmitClosedWindows(std::vector<stream::ClosedWindow> closed,
                           net::WindowId up_to_exclusive);
  /// Inline path: sorts/cuts and ships one window on the calling thread.
  Status EmitWindow(net::WindowId id, std::vector<Event> sorted);
  /// Async path: queues one window's sort+slice on the executor. γ is fixed
  /// here, at submission, so the schedule frontier semantics match the
  /// inline path exactly.
  Status SubmitWindowClose(net::WindowId id, std::vector<Event> events,
                           bool is_sorted);
  /// Ships ready prepared windows from the front of the completion buffer;
  /// blocks on stragglers only when \p block is set.
  Status DrainPreparedCloses(bool block);
  /// Sends one prepared window's synopsis batch, retains its events, and
  /// prunes the γ schedule (common tail of both paths).
  Status ShipPrepared(PreparedWindow prepared);
  Status HandleCandidateRequest(const CandidateRequest& req);
  Status HandleGammaUpdate(const GammaUpdate& update);
  /// Refreshes the retained-memory gauges (count, events, peak events).
  void UpdateRetainedGauges();

  /// A shipped window retained for candidate serving, together with the γ it
  /// was cut with (slice index ranges must be reconstructed with the same γ
  /// even after later γ updates).
  struct RetainedWindow {
    uint64_t gamma = 0;
    std::vector<Event> sorted;
  };

  DemaLocalNodeOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  stream::WindowManager windows_;
  /// Sorted events of shipped windows, kept until the root releases them.
  std::map<net::WindowId, RetainedWindow> retained_;
  /// Bounded ring of already-served windows (oldest evicted first): a reply
  /// can be lost in flight, and the root's retried request must find the
  /// events again. Released together with `retained_`.
  std::map<net::WindowId, RetainedWindow> served_;
  /// Transport-level duplicate suppression over message sequence numbers.
  net::SeqDedup dedup_;
  /// γ schedule: effective-from window id -> γ. Always non-empty.
  std::map<net::WindowId, uint64_t> gamma_schedule_;
  /// γ in effect at the start of known history; the answer for window ids
  /// older than every remaining schedule entry. Survives checkpoints.
  uint64_t oldest_known_gamma_;
  net::WindowId next_window_to_emit_ = 0;
  /// Sequenced completion buffer: futures for submitted window closes, in
  /// window-id (== submission) order. Only the front may ship, so synopses
  /// leave in id order no matter how the pool reorders completions.
  std::deque<std::future<PreparedWindow>> inflight_closes_;
  /// Events currently held in `retained_` (memory accounting).
  uint64_t retained_event_count_ = 0;
  /// High-water mark of `retained_event_count_` over the node's lifetime.
  uint64_t peak_retained_events_ = 0;
  /// Cached registry instruments.
  obs::Counter* c_events_ingested_;
  obs::Counter* c_windows_shipped_;
  obs::Counter* c_send_failures_;
  obs::Counter* c_duplicates_ignored_;
  obs::Gauge* g_retained_windows_;
  obs::Gauge* g_retained_events_;
  obs::Gauge* g_retained_events_peak_;
};

}  // namespace dema::core
