#pragma once

#include <cstdint>

namespace dema::core {

/// \brief Tuning knobs for the adaptive slice factor (Section 3.3).
struct GammaControllerOptions {
  /// Hard lower bound; the paper requires every slice to have >= 2 events.
  uint64_t min_gamma = 2;
  /// Hard upper bound (slices larger than the window are pointless).
  uint64_t max_gamma = 10'000'000;
  /// Exponential smoothing weight for new optima in (0, 1]; 1 jumps straight
  /// to each window's optimum, smaller values damp oscillation when event
  /// rates fluctuate window-to-window.
  double smoothing = 0.5;
};

/// \brief Per-window network-cost model of Dema (Section 3.3):
/// identification ships 2·l_G/γ synopsis events, calculation ships
/// m·(γ − 2) additional candidate events.
double GammaCostModel(uint64_t global_size, uint64_t num_candidate_slices,
                      uint64_t gamma);

/// \brief The cost model's unconstrained arg-min: γ* = sqrt(2·l_G / m).
uint64_t OptimalGamma(uint64_t global_size, uint64_t num_candidate_slices);

/// \brief Root-side controller that re-optimizes γ after every window.
///
/// After the calculation step of window w the root knows that window's true
/// l_G and candidate-slice count m; the controller moves γ toward the cost
/// model's arg-min for those observations. When rates and distributions are
/// stable across windows, γ converges to (and then reuses) the optimum, as
/// the paper prescribes.
class AdaptiveGammaController {
 public:
  AdaptiveGammaController(uint64_t initial_gamma, GammaControllerOptions options);

  /// The slice factor local nodes should currently use.
  uint64_t current() const { return current_; }

  /// Feeds one completed window's observations; returns the (possibly
  /// unchanged) new γ.
  uint64_t Observe(uint64_t global_size, uint64_t num_candidate_slices);

 private:
  uint64_t Clamp(uint64_t gamma) const;

  GammaControllerOptions options_;
  uint64_t current_;
};

}  // namespace dema::core
