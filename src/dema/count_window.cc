#include "dema/count_window.h"

#include <algorithm>

#include "dema/window_cut.h"

namespace dema::core {

Result<std::vector<size_t>> CountWindowPlanner::PlanCandidates(
    const std::vector<SliceSynopsis>& time_slices, uint64_t total_events) {
  if (window_size_ < 1) {
    return Status::InvalidArgument("count window size must be >= 1");
  }
  ranks_.clear();
  below_counts_.clear();
  for (uint64_t rank = window_size_; rank <= total_events;
       rank += window_size_) {
    ranks_.push_back(rank);
  }
  if (ranks_.empty()) return std::vector<size_t>{};

  DEMA_ASSIGN_OR_RETURN(
      WindowCutResult cut,
      WindowCut::SelectMulti(time_slices, total_events, ranks_));
  below_counts_.reserve(cut.selections.size());
  for (const RankSelection& sel : cut.selections) {
    below_counts_.push_back(sel.below_count);
  }
  return cut.candidates;
}

Result<std::vector<CountWindowPlanner::Boundary>>
CountWindowPlanner::ResolveBoundaries(std::vector<Event> candidate_events) const {
  std::sort(candidate_events.begin(), candidate_events.end());
  std::vector<Boundary> boundaries;
  boundaries.reserve(ranks_.size());
  for (size_t i = 0; i < ranks_.size(); ++i) {
    uint64_t within = ranks_[i] - below_counts_[i];
    if (within < 1 || within > candidate_events.size()) {
      return Status::Internal("boundary rank " + std::to_string(within) +
                              " outside candidate events [1, " +
                              std::to_string(candidate_events.size()) + "]");
    }
    boundaries.push_back(Boundary{ranks_[i], candidate_events[within - 1]});
  }
  return boundaries;
}

}  // namespace dema::core
