#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dema/slice.h"

namespace dema::core {

/// \brief Possible global-rank interval of one slice, derived from all
/// synopses (Section 3.2, grounded as in DESIGN.md).
///
/// `min_rank` is the smallest global rank the slice's first event can have;
/// `max_rank` the largest rank its last event can have. The true ranks of
/// every event in the slice lie within [min_rank, max_rank].
struct RankBounds {
  uint64_t min_rank = 0;
  uint64_t max_rank = 0;
};

/// \brief Diagnostic classification of slices (Figure 4 of the paper).
struct SliceClassCounts {
  /// Slices whose start/end positions no other slice covers.
  uint64_t separate = 0;
  /// Slices chained by partial overlap into compound-slices.
  uint64_t compound = 0;
  /// Slices entirely enclosed by another slice.
  uint64_t cover = 0;
};

/// \brief Rank-specific selection data: where a target rank falls after the
/// provably-below slices are removed.
struct RankSelection {
  /// The global target rank Pos(q).
  uint64_t rank = 0;
  /// Events in excluded slices that provably rank below `rank`; the final
  /// answer is the (rank - below_count)-th smallest candidate event.
  uint64_t below_count = 0;
};

/// \brief Output of the window-cut algorithm.
struct WindowCutResult {
  /// Indices (into the input synopsis vector) of candidate slices, ascending.
  std::vector<size_t> candidates;
  /// Per-target-rank selection offsets, in input rank order.
  std::vector<RankSelection> selections;
  /// Total events across candidate slices (the calculation step's network
  /// cost in events).
  uint64_t candidate_event_count = 0;
  /// Diagnostic slice classification.
  SliceClassCounts classes;
};

/// \brief The window-cut algorithm: picks the minimal provably-sufficient set
/// of candidate slices for one or more target ranks.
///
/// Guarantees: (i) every slice that can contain a target rank is a candidate;
/// (ii) every excluded slice lies entirely below or entirely above each
/// target rank, so `RankSelection::below_count` turns a global rank into an
/// exact rank among the merged candidate events. Runs in O(m log m) for m
/// slices.
class WindowCut {
 public:
  /// Computes each slice's possible global-rank interval. \p global_size must
  /// equal the sum of slice counts.
  static std::vector<RankBounds> ComputeRankBounds(
      const std::vector<SliceSynopsis>& slices);

  /// Selects candidates for a single target rank in [1, global_size].
  static Result<WindowCutResult> Select(const std::vector<SliceSynopsis>& slices,
                                        uint64_t global_size, uint64_t target_rank);

  /// Selects candidates for several target ranks at once (multi-quantile
  /// queries share one identification step). Ranks need not be sorted.
  static Result<WindowCutResult> SelectMulti(
      const std::vector<SliceSynopsis>& slices, uint64_t global_size,
      const std::vector<uint64_t>& target_ranks);

  /// Ablation baseline ("no window-cut"): starts from the slice the target
  /// rank lands in by cumulative counts and takes the transitive
  /// value-overlap closure around it as candidates — what a naive
  /// implementation without overlap pruning would transfer. Same exactness
  /// guarantees, typically many more candidate events under overlap.
  static Result<WindowCutResult> SelectNaiveOverlap(
      const std::vector<SliceSynopsis>& slices, uint64_t global_size,
      uint64_t target_rank);

  /// Literal transcription of the paper's Algorithm 1 control flow: order
  /// slices by their start position, scan from the left edge adding slices
  /// whose possible range reaches the target, break once a slice provably
  /// starts past it; then the mirrored scan from the right edge. Produces
  /// the same candidate set as `Select` (a property test asserts this); kept
  /// as the reference implementation of the paper's pseudocode and as the
  /// early-exit variant for very large slice counts.
  static Result<WindowCutResult> SelectTwoSidedScan(
      const std::vector<SliceSynopsis>& slices, uint64_t global_size,
      uint64_t target_rank);

  /// Classifies slices into separate / compound / cover (diagnostics).
  static SliceClassCounts ClassifySlices(const std::vector<SliceSynopsis>& slices);
};

}  // namespace dema::core
