#include "dema/slice.h"

namespace dema::core {

void SliceSynopsis::SerializeTo(net::Writer* w) const {
  w->PutU32(node);
  w->PutU32(index);
  w->PutEvent(first);
  w->PutEvent(last);
  w->PutU64(count);
}

Status SliceSynopsis::DeserializeInto(net::Reader* r, SliceSynopsis* out) {
  DEMA_RETURN_NOT_OK(r->GetU32(&out->node));
  DEMA_RETURN_NOT_OK(r->GetU32(&out->index));
  DEMA_RETURN_NOT_OK(r->GetEvent(&out->first));
  DEMA_RETURN_NOT_OK(r->GetEvent(&out->last));
  DEMA_RETURN_NOT_OK(r->GetU64(&out->count));
  if (out->count == 0) return Status::SerializationError("slice with zero events");
  return Status::OK();
}

std::ostream& operator<<(std::ostream& os, const SliceSynopsis& s) {
  return os << "Slice{n=" << s.node << ", i=" << s.index << ", c=" << s.count
            << ", first=" << s.first.value << ", last=" << s.last.value << "}";
}

Result<std::vector<SliceSynopsis>> CutIntoSlices(const std::vector<Event>& sorted,
                                                 NodeId node, uint64_t gamma) {
  if (gamma < 2) return Status::InvalidArgument("gamma must be >= 2");
  std::vector<SliceSynopsis> out;
  uint64_t n = sorted.size();
  out.reserve(static_cast<size_t>((n + gamma - 1) / gamma));
  uint32_t index = 0;
  for (uint64_t begin = 0; begin < n; begin += gamma, ++index) {
    uint64_t end = std::min(n, begin + gamma);
    SliceSynopsis s;
    s.node = node;
    s.index = index;
    s.first = sorted[begin];
    s.last = sorted[end - 1];
    s.count = end - begin;
    out.push_back(s);
  }
  return out;
}

}  // namespace dema::core
