#pragma once

#include <cstdint>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "dema/slice.h"
#include "net/codec.h"
#include "net/message.h"

namespace dema::core {

using net::WindowId;

/// \brief Local -> root: all slice synopses for one closed local window
/// (identification step).
///
/// Sent exactly once per (node, window), also when the local window is empty
/// — the root needs to hear from every node before it can align the global
/// window.
struct SynopsisBatch {
  WindowId window_id = 0;
  NodeId node = 0;
  /// Total events in this node's local window (= sum of slice counts).
  uint64_t local_window_size = 0;
  /// Gamma the window was cut with (lets the root sanity-check positions).
  uint32_t gamma_used = 0;
  /// Processing-time instant the local window closed (latency metric input;
  /// part of the wire format like any other protocol field).
  TimestampUs close_time_us = 0;
  std::vector<SliceSynopsis> slices;

  void SerializeTo(net::Writer* w) const;
  static Result<SynopsisBatch> Deserialize(net::Reader* r);
};

/// \brief Root -> local: request the raw events of the given slices of one
/// window (calculation step).
struct CandidateRequest {
  WindowId window_id = 0;
  /// Slice indices within the local window, ascending.
  std::vector<uint32_t> slice_indices;

  void SerializeTo(net::Writer* w) const;
  static Result<CandidateRequest> Deserialize(net::Reader* r);
};

/// \brief Local -> root: the requested candidate events, pre-sorted.
///
/// Requested slices are disjoint index ranges of the node's fully sorted
/// window, so their concatenation in index order is itself sorted — the root
/// only merges across nodes, never re-sorts.
struct CandidateReply {
  WindowId window_id = 0;
  NodeId node = 0;
  /// Wire encoding for the (sorted) candidate events.
  net::EventCodec codec = net::EventCodec::kFixed;
  std::vector<Event> events;

  void SerializeTo(net::Writer* w) const;
  static Result<CandidateReply> Deserialize(net::Reader* r);
  uint64_t WireEventCount() const { return events.size(); }
};

/// \brief Root -> local broadcast: slice factor to use from a given window on
/// (adaptive gamma, Section 3.3).
struct GammaUpdate {
  /// First window id the new factor applies to.
  WindowId effective_from = 0;
  uint32_t gamma = 0;

  void SerializeTo(net::Writer* w) const;
  static Result<GammaUpdate> Deserialize(net::Reader* r);
};

/// \brief Local -> root: request the current slice factor after a restart.
///
/// A local that resumed from a checkpoint may have missed gamma broadcasts
/// while it was down; the root answers with a regular `GammaUpdate` carrying
/// its current factor for the node (`effective_from` 0 — the local clamps it
/// to its own emission frontier).
struct GammaSyncRequest {
  /// The requesting node (authoritative even if the envelope src differs).
  NodeId node = 0;

  void SerializeTo(net::Writer* w) const;
  static Result<GammaSyncRequest> Deserialize(net::Reader* r);
};

/// \brief Final aggregation output for one global window and one quantile.
struct WindowResult {
  WindowId window_id = 0;
  /// The queried quantile in (0, 1].
  double q = 0.5;
  /// The exact quantile event (undefined when `global_size` is 0).
  Event result;
  /// Global window size l_G.
  uint64_t global_size = 0;
  /// Latency from the last local-window close to result emission.
  DurationUs latency_us = 0;

  void SerializeTo(net::Writer* w) const;
  static Result<WindowResult> Deserialize(net::Reader* r);
};

}  // namespace dema::core
