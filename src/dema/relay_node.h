#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "dema/protocol.h"
#include "transport/transport.h"
#include "sim/node.h"

namespace dema::core {

/// \brief Configuration of a Dema relay (intermediate aggregation) node.
struct DemaRelayNodeOptions {
  /// This relay's id.
  NodeId id = 0;
  /// The upstream node (the root, or another relay).
  NodeId parent = 0;
  /// The downstream nodes (local nodes, or other relays).
  std::vector<NodeId> children;
};

/// \brief Intermediate tier for hierarchical Dema topologies.
///
/// Deep IoT deployments aggregate through trees (the tree-structured systems
/// of the paper's related work); Dema's protocol composes naturally because
/// a relay can speak the *local-node* protocol upward while running the
/// *root* protocol downward:
///
///  * Identification: the relay collects one synopsis batch per child per
///    window, re-indexes the union of their slices under its own node id
///    (first/last/count are untouched, so the rank mathematics upstream is
///    unchanged), and ships a single combined batch to its parent — fan-in
///    at the root drops from #leaves to #relays.
///  * Calculation: a candidate request from the parent is split by owning
///    child; the pre-sorted child replies are loser-tree merged into one
///    sorted reply upward. The relay never retains raw events.
///  * γ updates are forwarded to every child.
///
/// Relays nest: a relay's parent may be another relay.
class DemaRelayNode final : public sim::NodeLogic {
 public:
  /// \p transport and \p clock must outlive the node.
  DemaRelayNode(DemaRelayNodeOptions options, transport::Transport* transport,
                const Clock* clock);

  Status OnMessage(const net::Message& msg) override;

  /// Windows awaiting child synopses or replies (memory accounting).
  size_t pending_windows() const {
    return pending_up_.size() + pending_down_.size();
  }

 private:
  /// Identification-side state: collecting child synopses.
  struct PendingUp {
    std::vector<bool> child_reported;  // by child index
    size_t children_received = 0;
    uint64_t combined_size = 0;
    TimestampUs last_close_time_us = 0;
    uint32_t gamma_used = 0;
    std::vector<SliceSynopsis> slices;  // re-indexed under the relay's id
    /// Re-index mapping: relay slice index -> (child node, child index).
    std::vector<std::pair<NodeId, uint32_t>> origin;
  };
  /// Calculation-side state: collecting child candidate replies.
  struct PendingDown {
    size_t expected_replies = 0;
    std::vector<std::vector<Event>> runs;
  };

  Status HandleChildSynopsis(const SynopsisBatch& batch);
  Status HandleParentRequest(const CandidateRequest& request);
  Status HandleChildReply(const CandidateReply& reply);
  Status HandleGammaUpdate(const net::Message& msg);

  DemaRelayNodeOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::map<NodeId, size_t> child_index_;
  std::map<net::WindowId, PendingUp> pending_up_;
  /// Re-index mappings for windows already forwarded upward, kept until the
  /// parent's candidate request arrives.
  std::map<net::WindowId, std::vector<std::pair<NodeId, uint32_t>>> forwarded_;
  std::map<net::WindowId, PendingDown> pending_down_;
};

}  // namespace dema::core
