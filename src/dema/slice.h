#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "net/serializer.h"

namespace dema::core {

/// \brief Synopsis of one sorted local-window slice (Section 3.1).
///
/// The unit of Dema's identification step: instead of the slice's events, a
/// local node ships only the slice's first and last event, its event count,
/// and its position within the node's slice sequence. Together with every
/// other synopsis, this is enough for the root to bound the global rank range
/// each slice can cover.
struct SliceSynopsis {
  /// Local node that produced the slice.
  NodeId node = 0;
  /// Index of this slice within its node's local window (0-based; slices of
  /// one node are in ascending value order).
  uint32_t index = 0;
  /// Smallest event in the slice.
  Event first;
  /// Largest event in the slice.
  Event last;
  /// Number of events in the slice (>= 1; the trailing slice of a window may
  /// be smaller than gamma).
  uint64_t count = 0;

  /// Serializes this synopsis.
  void SerializeTo(net::Writer* w) const;
  /// Parses a synopsis.
  static Status DeserializeInto(net::Reader* r, SliceSynopsis* out);
};

std::ostream& operator<<(std::ostream& os, const SliceSynopsis& s);

/// \brief Cuts a *sorted* local window into slices of at most \p gamma events
/// and returns their synopses (the trailing slice holds the remainder).
///
/// \p gamma must be >= 2 — the paper requires every slice to carry at least
/// two events' worth of synopsis; the final slice may still end up with one
/// event when the window size is not a multiple of gamma.
Result<std::vector<SliceSynopsis>> CutIntoSlices(const std::vector<Event>& sorted,
                                                 NodeId node, uint64_t gamma);

/// \brief Returns the half-open index range [begin, end) of slice \p index in
/// a window of \p window_size events cut with \p gamma.
inline std::pair<uint64_t, uint64_t> SliceEventRange(uint64_t window_size,
                                                     uint64_t gamma,
                                                     uint32_t index) {
  uint64_t begin = static_cast<uint64_t>(index) * gamma;
  uint64_t end = std::min(window_size, begin + gamma);
  return {begin, end};
}

}  // namespace dema::core
