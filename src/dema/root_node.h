#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "dema/adaptive_gamma.h"
#include "dema/protocol.h"
#include "dema/window_cut.h"
#include "net/dedup.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "transport/transport.h"
#include "sim/node.h"

namespace dema::core {

/// \brief Configuration of the Dema root node.
struct DemaRootNodeOptions {
  /// This node's id.
  NodeId id = 0;
  /// Ids of all local nodes contributing to global windows.
  std::vector<NodeId> locals;
  /// Quantiles to answer per window, each in (0, 1]. One identification step
  /// serves all of them (multi-quantile extension). Validated at
  /// construction; a bad quantile fails every OnMessage instead of poisoning
  /// a running cluster mid-stream.
  std::vector<double> quantiles = {0.5};
  /// Initial slice factor (also broadcast target when adaptation is off).
  uint64_t initial_gamma = 10'000;
  /// Re-optimize γ after every window (Section 3.3) and broadcast updates.
  bool adaptive_gamma = false;
  /// Controller tuning (used when adaptive_gamma is true).
  GammaControllerOptions gamma_options;
  /// Paper's future-work extension: optimize a separate γ per local node
  /// from that node's own window size and candidate-slice count
  /// (γ_i* = sqrt(2·l_i / m_i)), instead of one global factor. Only
  /// meaningful with adaptive_gamma; heterogeneous event rates benefit most.
  bool per_node_gamma = false;
  /// Ablation: replace window-cut with naive transitive-overlap selection.
  /// Only valid with a single quantile (checked at construction).
  bool use_naive_selection = false;
  /// Tolerate at-least-once delivery: duplicate synopses/replies are ignored
  /// (counted in stats) instead of failing the node. On by default — IoT
  /// transports retransmit; turn off to assert exactly-once in tests.
  bool tolerate_duplicates = true;
  /// Per-window progress deadline, measured in `Tick()` calls: a pending
  /// window that makes no progress for this many ticks gets its candidate
  /// requests retried (with exponential backoff), and after `max_retries`
  /// attempts is emitted degraded. 0 (default) disables the deadline
  /// machinery entirely — the legacy wait-forever behavior. With a deadline
  /// enabled, transport send failures also become survivable (counted in
  /// `root.send_failures` instead of failing the node).
  uint64_t deadline_ticks = 0;
  /// Recovery attempts per window before degrading (with deadlines on).
  uint32_t max_retries = 3;
  /// Hold inbound payloads to the strict flat-topology protocol rules (see
  /// `ValidateSynopsisBatch`): slices form an exact γ-cut of one sorted local
  /// window. Tree builders turn this off — a relay's combined batch
  /// legitimately interleaves its children's cuts — keeping only the
  /// structural rules (node identity, finite sorted values, sizes that add
  /// up).
  bool strict_validation = true;
  /// Misbehaving-local quarantine: after this many rejected payloads a local
  /// is excluded from the window protocol — its payloads are dropped, it is
  /// left out of completion expectations and the window-cut, and affected
  /// windows emit through the degraded path with `cause=quarantine` and a
  /// rank-error bound. 0 (default) disables quarantine; rejections are still
  /// counted in `dema.rejected{reason=}` and dropped.
  uint32_t quarantine_strikes = 0;
  /// Windows a quarantined local sits out before probation begins.
  uint64_t probation_windows = 8;
  /// Exact windows a probation local must contribute cleanly before full
  /// re-admission; any rejection during probation re-quarantines it.
  uint32_t probation_clean_windows = 2;
  /// Optional label set stamped onto every instrument this node records, as
  /// a comma-separated `key=value` list without braces (e.g. "shard=3" turns
  /// `dema.windows` into `dema.windows{shard=3}` and merges into the
  /// `dema.rejected{reason=...}` breakdown). The shard service labels each
  /// shard's per-key roots with its shard index, so instruments aggregate
  /// per shard while sharing one registry. Empty keeps the legacy names.
  std::string instrument_label;
  /// Metrics sink for the `dema.*` instruments. When null, the node owns a
  /// private registry (reachable via `registry()`), so instrumentation is
  /// always on. Must outlive the node when provided.
  obs::Registry* registry = nullptr;
  /// Optional per-window span recorder; when set, every emitted window
  /// records one `obs::WindowTrace`. Must outlive the node.
  obs::TraceRecorder* tracer = nullptr;
};

/// \brief Aggregate algorithm counters across all completed windows.
///
/// A point-in-time view materialized from the node's registry instruments
/// (the registry is the source of truth; this struct keeps the historical
/// accessor shape).
struct DemaRootStats {
  uint64_t windows = 0;
  /// Slice synopses received (identification step volume).
  uint64_t synopsis_slices = 0;
  /// Slices marked candidate by window-cut.
  uint64_t candidate_slices = 0;
  /// Raw events transferred in calculation steps.
  uint64_t candidate_events = 0;
  /// Sum of global window sizes.
  uint64_t global_events = 0;
  /// Accumulated slice classification diagnostics.
  SliceClassCounts classes;
  /// γ update messages sent (one per recipient local node).
  uint64_t gamma_updates_sent = 0;
  /// Duplicate deliveries ignored (at-least-once transport tolerance).
  uint64_t duplicates_ignored = 0;
  /// Windows whose local close stamp was ahead of the root clock (latency
  /// clamped to 0 instead of underflowing).
  uint64_t clock_skew_windows = 0;
  /// Candidate-request retransmissions sent by the deadline machinery.
  uint64_t retries = 0;
  /// Windows emitted best-effort after recovery was exhausted.
  uint64_t degraded_windows = 0;
  /// Transport send failures tolerated while recovery was enabled.
  uint64_t send_failures = 0;
  /// Inbound payloads rejected by the validation pass (all reasons).
  uint64_t rejected_payloads = 0;
  /// Quarantine entries (a re-offending probation local counts again).
  uint64_t quarantines = 0;
  /// Locals fully re-admitted after a clean probation.
  uint64_t readmissions = 0;
};

/// \brief Dema's root node: runs the identification and calculation steps
/// (Section 3.1) and the adaptive-γ loop (Section 3.3).
///
/// Per global window: collects one synopsis batch from every local node,
/// runs window-cut to pick candidate slices, requests exactly those slices'
/// events, merges the pre-sorted replies with a loser tree, and emits the
/// exact quantile event(s). Windows complete independently, so several can
/// be in flight.
class DemaRootNode final : public sim::RootNodeLogic {
 public:
  /// \p transport and \p clock must outlive the node.
  DemaRootNode(DemaRootNodeOptions options, transport::Transport* transport,
               const Clock* clock);

  Status OnMessage(const net::Message& msg) override;
  void SetResultCallback(sim::ResultCallback cb) override { callback_ = std::move(cb); }
  uint64_t windows_emitted() const override { return c_windows_->Value(); }
  bool idle() const override { return pending_.empty(); }

  /// Deadline tick (no-op unless `deadline_ticks` > 0): checks every pending
  /// window for progress, retries candidate requests with exponential
  /// backoff, and degrades windows whose retry budget ran out — a faulty run
  /// always terminates with `pending_` empty, never a silent stall.
  Status Tick() override;

  /// Tells the deadline machinery that windows up to \p last exist, even if
  /// no synopsis for them ever arrives (a driver knows the workload horizon;
  /// the root alone cannot distinguish "stream ended" from "everything was
  /// dropped"). No-op unless deadlines are enabled.
  void NoteWindowHorizon(net::WindowId last);

  /// Algorithm counters over all completed windows (snapshot of the
  /// registry-backed instruments).
  DemaRootStats stats() const;

  /// Construction-time option validation result; every OnMessage returns
  /// this error while it is not OK.
  const Status& init_status() const { return init_status_; }

  /// The registry this node records into (the options-provided one, or the
  /// node's own private registry).
  obs::Registry* registry() const { return registry_; }

  /// The slice factor the global controller currently prescribes.
  uint64_t current_gamma() const { return gamma_.current(); }

  /// The per-node slice factor currently prescribed for \p node (falls back
  /// to the global factor when per-node mode is off or unobserved).
  uint64_t current_gamma_for(NodeId node) const;

 private:
  struct PendingWindow {
    std::vector<SliceSynopsis> slices;
    std::vector<bool> synopsis_from;  // by local index
    size_t synopses_received = 0;
    uint64_t global_size = 0;
    TimestampUs last_close_time_us = 0;
    bool requests_sent = false;
    size_t expected_replies = 0;
    std::vector<bool> reply_from;  // by local index (duplicate suppression)
    std::vector<std::vector<Event>> reply_runs;
    WindowCutResult cut;
    obs::WindowTrace trace;  // lifecycle span, recorded at emit
    /// The candidate indices sent to each node, kept so the deadline
    /// machinery can retransmit the exact same requests.
    std::map<NodeId, std::vector<uint32_t>> request_indices;
    /// Recovery attempts consumed.
    uint32_t retries = 0;
    /// Tick at which the deadline machinery next examines this window;
    /// pushed forward on every progress event.
    uint64_t next_check_tick = 0;
    /// Events excluded from this window because their local was quarantined
    /// (exact counts for stripped synopses, last-known-size estimates for
    /// never-arrived ones). Non-zero forces a degraded emit with
    /// `cause=quarantine` and this value as the rank-error bound.
    uint64_t excluded_events = 0;
    /// Locals (by index) already accounted into `excluded_events`.
    std::vector<bool> excluded_from;
  };

  /// Per-local reputation for the misbehaving-local quarantine.
  struct LocalReputation {
    enum class State { kHealthy, kQuarantined, kProbation };
    State state = State::kHealthy;
    /// Rejected payloads since the last clean slate (healthy state only).
    uint32_t strikes = 0;
    /// Quarantine: emitted windows left before probation begins.
    uint64_t probation_windows_left = 0;
    /// Probation: clean windows left before full re-admission.
    uint32_t clean_windows_needed = 0;
    /// Trusted window size from the local's last *accepted* synopsis; basis
    /// of the excluded-events estimate for windows it never contributed to.
    uint64_t last_known_size = 0;
    /// Untrusted size claimed by its last *rejected* synopsis (fallback
    /// estimate when nothing was ever accepted).
    uint64_t last_claimed_size = 0;
  };

  Status HandleSynopsisBatch(const SynopsisBatch& batch, NodeId src);
  /// Takes the reply by value: its event run moves straight into
  /// `PendingWindow::reply_runs` without a copy (hot path — one run per node
  /// per window).
  Status HandleCandidateReply(CandidateReply reply, NodeId src);
  Status HandleGammaSync(const GammaSyncRequest& sync, NodeId src);
  /// Drops an inbound payload that failed validation: counts it into
  /// `dema.rejected` (total and per \p reason) and, with quarantine enabled
  /// and \p src a known local, adds a strike — possibly quarantining it.
  /// Always resolves to OK (or an internal error from the quarantine sweep);
  /// corruption must never take the root down.
  Status RejectPayload(NodeId src, const char* reason);
  /// Strike accounting for local \p idx; quarantines on the K-th strike and
  /// immediately re-quarantines a striking probation local.
  Status AddStrike(size_t idx);
  /// Excludes local \p idx: flips its state, then sweeps pending windows —
  /// pre-identification windows drop its accepted slices (and may now
  /// complete without it); post-identification windows still waiting on its
  /// reply emit degraded with `cause=quarantine`.
  Status QuarantineLocal(size_t idx);
  /// True when local \p idx is currently excluded by quarantine.
  bool IsQuarantined(size_t idx) const;
  /// Every non-quarantined local has contributed a synopsis.
  bool SynopsesComplete(const PendingWindow& w) const;
  /// Runs identification once the (quarantine-aware) synopsis set is
  /// complete, first charging excluded-size estimates for quarantined locals
  /// that never contributed.
  Status MaybeRunIdentification(net::WindowId id, PendingWindow* w);
  /// Best-guess window size of an excluded local (last accepted size, else
  /// last claimed).
  uint64_t ExcludedSizeEstimate(size_t idx) const;
  /// Credits probation locals that contributed cleanly to a completed
  /// window; the last needed credit re-admits them.
  void CreditCleanWindow(const PendingWindow& w);
  /// Emits a best-effort result for a window whose recovery budget ran out:
  /// the quantile over whatever candidate replies arrived, or an estimate
  /// from the synopses alone, flagged with a rank-error bound and \p cause.
  Status EmitDegraded(net::WindowId id, PendingWindow* w,
                      const std::string& cause);
  /// Sends \p m; with deadlines enabled a failure (e.g. dead peer mid-
  /// restart) is absorbed into `root.send_failures` — retry or degradation
  /// covers it — instead of failing the caller.
  Status SendBestEffort(net::Message m);
  /// Emitted-window bookkeeping: late messages for an already-emitted window
  /// must be absorbed, never allowed to resurrect a pending entry.
  void MarkEmitted(net::WindowId id);
  bool IsEmitted(net::WindowId id) const;
  /// All synopses in: run window-cut and fire candidate requests.
  Status RunIdentification(net::WindowId id, PendingWindow* w);
  /// All replies in: merge, select, emit, adapt γ.
  Status CompleteWindow(net::WindowId id, PendingWindow* w);
  Status BroadcastGamma(net::WindowId effective_from, uint64_t gamma);
  /// Per-node mode: feed each node's (l_i, m_i) observation and send
  /// node-specific updates where the prescription changed.
  Status AdaptPerNode(net::WindowId completed_window, const PendingWindow& w);
  /// Emission-time latency relative to \p close_us, clamped at 0; a clamp
  /// counts into `dema.clock_skew_windows` and flags the trace.
  DurationUs EmitLatencyUs(TimestampUs close_us, obs::WindowTrace* trace);
  /// Finalizes and records the window's trace span.
  void RecordTrace(PendingWindow* w);

  DemaRootNodeOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  obs::TraceRecorder* tracer_;
  Status init_status_;
  std::map<NodeId, size_t> local_index_;
  std::map<net::WindowId, PendingWindow> pending_;
  /// Per-local reputation, by local index (parallel to `options_.locals`).
  std::vector<LocalReputation> health_;
  /// Transport-level duplicate suppression over message sequence numbers.
  net::SeqDedup dedup_;
  /// Deadline clock (incremented per `Tick()`).
  uint64_t tick_ = 0;
  /// Emitted-window tracking: every id < emitted_below_ is emitted, plus the
  /// out-of-order ids in emitted_above_.
  net::WindowId emitted_below_ = 0;
  std::set<net::WindowId> emitted_above_;
  /// Highest window id known to exist (from synopses or the driver horizon);
  /// gap-fill creates pending entries up to it so fully-dropped windows
  /// degrade instead of stalling silently.
  net::WindowId highest_window_seen_ = 0;
  bool any_window_seen_ = false;
  sim::ResultCallback callback_;
  AdaptiveGammaController gamma_;
  uint64_t last_broadcast_gamma_;
  /// Per-node controllers and last-broadcast values (per-node mode only).
  std::vector<AdaptiveGammaController> node_gamma_;
  std::vector<uint64_t> node_last_broadcast_;
  /// Cached registry instruments (stable pointers; hot-path increments).
  obs::Counter* c_windows_;
  obs::Counter* c_synopsis_slices_;
  obs::Counter* c_candidate_slices_;
  obs::Counter* c_candidate_events_;
  obs::Counter* c_global_events_;
  obs::Counter* c_class_separate_;
  obs::Counter* c_class_compound_;
  obs::Counter* c_class_cover_;
  obs::Counter* c_gamma_updates_sent_;
  obs::Counter* c_duplicates_ignored_;
  obs::Counter* c_clock_skew_windows_;
  obs::Counter* c_degraded_windows_;
  obs::Counter* c_retries_;
  obs::Counter* c_send_failures_;
  obs::Counter* c_rejected_;
  obs::Counter* c_quarantined_;
  obs::Counter* c_readmitted_;
  /// Calculation-step selection time (rank-select over the reply runs,
  /// wall-clock µs) — the cost `SelectRanksFromRuns` keeps off the heap.
  obs::Histogram* h_select_us_;
};

}  // namespace dema::core
