#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "dema/adaptive_gamma.h"
#include "dema/protocol.h"
#include "dema/window_cut.h"
#include "transport/transport.h"
#include "sim/node.h"

namespace dema::core {

/// \brief Configuration of the Dema root node.
struct DemaRootNodeOptions {
  /// This node's id.
  NodeId id = 0;
  /// Ids of all local nodes contributing to global windows.
  std::vector<NodeId> locals;
  /// Quantiles to answer per window, each in (0, 1]. One identification step
  /// serves all of them (multi-quantile extension).
  std::vector<double> quantiles = {0.5};
  /// Initial slice factor (also broadcast target when adaptation is off).
  uint64_t initial_gamma = 10'000;
  /// Re-optimize γ after every window (Section 3.3) and broadcast updates.
  bool adaptive_gamma = false;
  /// Controller tuning (used when adaptive_gamma is true).
  GammaControllerOptions gamma_options;
  /// Paper's future-work extension: optimize a separate γ per local node
  /// from that node's own window size and candidate-slice count
  /// (γ_i* = sqrt(2·l_i / m_i)), instead of one global factor. Only
  /// meaningful with adaptive_gamma; heterogeneous event rates benefit most.
  bool per_node_gamma = false;
  /// Ablation: replace window-cut with naive transitive-overlap selection.
  /// Only valid with a single quantile.
  bool use_naive_selection = false;
  /// Tolerate at-least-once delivery: duplicate synopses/replies are ignored
  /// (counted in stats) instead of failing the node. On by default — IoT
  /// transports retransmit; turn off to assert exactly-once in tests.
  bool tolerate_duplicates = true;
};

/// \brief Aggregate algorithm counters across all completed windows.
struct DemaRootStats {
  uint64_t windows = 0;
  /// Slice synopses received (identification step volume).
  uint64_t synopsis_slices = 0;
  /// Slices marked candidate by window-cut.
  uint64_t candidate_slices = 0;
  /// Raw events transferred in calculation steps.
  uint64_t candidate_events = 0;
  /// Sum of global window sizes.
  uint64_t global_events = 0;
  /// Accumulated slice classification diagnostics.
  SliceClassCounts classes;
  /// γ broadcasts sent.
  uint64_t gamma_updates_sent = 0;
  /// Duplicate deliveries ignored (at-least-once transport tolerance).
  uint64_t duplicates_ignored = 0;
};

/// \brief Dema's root node: runs the identification and calculation steps
/// (Section 3.1) and the adaptive-γ loop (Section 3.3).
///
/// Per global window: collects one synopsis batch from every local node,
/// runs window-cut to pick candidate slices, requests exactly those slices'
/// events, merges the pre-sorted replies with a loser tree, and emits the
/// exact quantile event(s). Windows complete independently, so several can
/// be in flight.
class DemaRootNode final : public sim::RootNodeLogic {
 public:
  /// \p transport and \p clock must outlive the node.
  DemaRootNode(DemaRootNodeOptions options, transport::Transport* transport,
               const Clock* clock);

  Status OnMessage(const net::Message& msg) override;
  void SetResultCallback(sim::ResultCallback cb) override { callback_ = std::move(cb); }
  uint64_t windows_emitted() const override { return stats_.windows; }
  bool idle() const override { return pending_.empty(); }

  /// Algorithm counters over all completed windows.
  const DemaRootStats& stats() const { return stats_; }

  /// The slice factor the global controller currently prescribes.
  uint64_t current_gamma() const { return gamma_.current(); }

  /// The per-node slice factor currently prescribed for \p node (falls back
  /// to the global factor when per-node mode is off or unobserved).
  uint64_t current_gamma_for(NodeId node) const;

 private:
  struct PendingWindow {
    std::vector<SliceSynopsis> slices;
    std::vector<bool> synopsis_from;  // by local index
    size_t synopses_received = 0;
    uint64_t global_size = 0;
    TimestampUs last_close_time_us = 0;
    bool requests_sent = false;
    size_t expected_replies = 0;
    std::vector<bool> reply_from;  // by local index (duplicate suppression)
    std::vector<std::vector<Event>> reply_runs;
    WindowCutResult cut;
  };

  Status HandleSynopsisBatch(const SynopsisBatch& batch);
  Status HandleCandidateReply(const CandidateReply& reply);
  /// All synopses in: run window-cut and fire candidate requests.
  Status RunIdentification(net::WindowId id, PendingWindow* w);
  /// All replies in: merge, select, emit, adapt γ.
  Status CompleteWindow(net::WindowId id, PendingWindow* w);
  Status BroadcastGamma(net::WindowId effective_from, uint64_t gamma);
  /// Per-node mode: feed each node's (l_i, m_i) observation and send
  /// node-specific updates where the prescription changed.
  Status AdaptPerNode(net::WindowId completed_window, const PendingWindow& w);

  DemaRootNodeOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::map<NodeId, size_t> local_index_;
  std::map<net::WindowId, PendingWindow> pending_;
  sim::ResultCallback callback_;
  AdaptiveGammaController gamma_;
  uint64_t last_broadcast_gamma_;
  /// Per-node controllers and last-broadcast values (per-node mode only).
  std::vector<AdaptiveGammaController> node_gamma_;
  std::vector<uint64_t> node_last_broadcast_;
  DemaRootStats stats_;
};

}  // namespace dema::core
