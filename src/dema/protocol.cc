#include "dema/protocol.h"

namespace dema::core {

void SynopsisBatch::SerializeTo(net::Writer* w) const {
  w->PutU64(window_id);
  w->PutU32(node);
  w->PutU64(local_window_size);
  w->PutU32(gamma_used);
  w->PutI64(close_time_us);
  w->PutU32(static_cast<uint32_t>(slices.size()));
  for (const SliceSynopsis& s : slices) s.SerializeTo(w);
}

Result<SynopsisBatch> SynopsisBatch::Deserialize(net::Reader* r) {
  SynopsisBatch b;
  DEMA_RETURN_NOT_OK(r->GetU64(&b.window_id));
  DEMA_RETURN_NOT_OK(r->GetU32(&b.node));
  DEMA_RETURN_NOT_OK(r->GetU64(&b.local_window_size));
  DEMA_RETURN_NOT_OK(r->GetU32(&b.gamma_used));
  DEMA_RETURN_NOT_OK(r->GetI64(&b.close_time_us));
  uint32_t n = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&n));
  // Each serialized synopsis is at least two events + ids + count; reject
  // counts the remaining buffer cannot possibly hold before reserving.
  constexpr size_t kMinSynopsisBytes = 2 * kEventWireBytes + 2 * sizeof(uint32_t);
  if (static_cast<size_t>(n) * kMinSynopsisBytes > r->remaining()) {
    return Status::SerializationError("slice count exceeds remaining buffer");
  }
  b.slices.reserve(n);
  uint64_t total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    SliceSynopsis s;
    DEMA_RETURN_NOT_OK(SliceSynopsis::DeserializeInto(r, &s));
    total += s.count;
    b.slices.push_back(s);
  }
  if (total != b.local_window_size) {
    return Status::SerializationError("slice counts do not sum to window size");
  }
  return b;
}

void CandidateRequest::SerializeTo(net::Writer* w) const {
  w->PutU64(window_id);
  w->PutU32(static_cast<uint32_t>(slice_indices.size()));
  for (uint32_t idx : slice_indices) w->PutU32(idx);
}

Result<CandidateRequest> CandidateRequest::Deserialize(net::Reader* r) {
  CandidateRequest req;
  DEMA_RETURN_NOT_OK(r->GetU64(&req.window_id));
  uint32_t n = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&n));
  if (static_cast<size_t>(n) * sizeof(uint32_t) > r->remaining()) {
    return Status::SerializationError("index count exceeds remaining buffer");
  }
  req.slice_indices.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t idx = 0;
    DEMA_RETURN_NOT_OK(r->GetU32(&idx));
    if (!req.slice_indices.empty() && idx <= req.slice_indices.back()) {
      return Status::SerializationError("slice indices must be ascending");
    }
    req.slice_indices.push_back(idx);
  }
  return req;
}

void CandidateReply::SerializeTo(net::Writer* w) const {
  w->PutU64(window_id);
  w->PutU32(node);
  net::EncodeEvents(w, events, codec, /*sorted_hint=*/true);
}

Result<CandidateReply> CandidateReply::Deserialize(net::Reader* r) {
  CandidateReply rep;
  DEMA_RETURN_NOT_OK(r->GetU64(&rep.window_id));
  DEMA_RETURN_NOT_OK(r->GetU32(&rep.node));
  DEMA_RETURN_NOT_OK(net::DecodeEvents(r, &rep.events));
  return rep;
}

void GammaUpdate::SerializeTo(net::Writer* w) const {
  w->PutU64(effective_from);
  w->PutU32(gamma);
}

Result<GammaUpdate> GammaUpdate::Deserialize(net::Reader* r) {
  GammaUpdate g;
  DEMA_RETURN_NOT_OK(r->GetU64(&g.effective_from));
  DEMA_RETURN_NOT_OK(r->GetU32(&g.gamma));
  if (g.gamma < 2) return Status::SerializationError("gamma must be >= 2");
  return g;
}

void GammaSyncRequest::SerializeTo(net::Writer* w) const { w->PutU32(node); }

Result<GammaSyncRequest> GammaSyncRequest::Deserialize(net::Reader* r) {
  GammaSyncRequest g;
  DEMA_RETURN_NOT_OK(r->GetU32(&g.node));
  return g;
}

void WindowResult::SerializeTo(net::Writer* w) const {
  w->PutU64(window_id);
  w->PutDouble(q);
  w->PutEvent(result);
  w->PutU64(global_size);
  w->PutI64(latency_us);
}

Result<WindowResult> WindowResult::Deserialize(net::Reader* r) {
  WindowResult res;
  DEMA_RETURN_NOT_OK(r->GetU64(&res.window_id));
  DEMA_RETURN_NOT_OK(r->GetDouble(&res.q));
  DEMA_RETURN_NOT_OK(r->GetEvent(&res.result));
  DEMA_RETURN_NOT_OK(r->GetU64(&res.global_size));
  DEMA_RETURN_NOT_OK(r->GetI64(&res.latency_us));
  return res;
}

}  // namespace dema::core
