#include "dema/root_node.h"

#include <algorithm>
#include <chrono>

#include "dema/validate.h"
#include "stream/merge.h"
#include "stream/quantile.h"

namespace dema::core {

DemaRootNode::DemaRootNode(DemaRootNodeOptions options, transport::Transport* transport,
                           const Clock* clock)
    : options_(std::move(options)),
      transport_(transport),
      clock_(clock),
      registry_(options_.registry),
      tracer_(options_.tracer),
      gamma_(options_.initial_gamma, options_.gamma_options),
      last_broadcast_gamma_(gamma_.current()) {
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  const std::string label = options_.instrument_label.empty()
                                ? std::string()
                                : "{" + options_.instrument_label + "}";
  c_windows_ = registry_->GetCounter("dema.windows" + label);
  c_synopsis_slices_ = registry_->GetCounter("dema.synopsis_slices" + label);
  c_candidate_slices_ = registry_->GetCounter("dema.candidate_slices" + label);
  c_candidate_events_ = registry_->GetCounter("dema.candidate_events" + label);
  c_global_events_ = registry_->GetCounter("dema.global_events" + label);
  c_class_separate_ = registry_->GetCounter("dema.classes.separate" + label);
  c_class_compound_ = registry_->GetCounter("dema.classes.compound" + label);
  c_class_cover_ = registry_->GetCounter("dema.classes.cover" + label);
  c_gamma_updates_sent_ = registry_->GetCounter("dema.gamma_updates_sent" + label);
  c_duplicates_ignored_ = registry_->GetCounter("dema.duplicates_ignored" + label);
  c_clock_skew_windows_ = registry_->GetCounter("dema.clock_skew_windows" + label);
  c_degraded_windows_ = registry_->GetCounter("dema.degraded_windows" + label);
  c_retries_ = registry_->GetCounter("root.retries" + label);
  c_send_failures_ = registry_->GetCounter("root.send_failures" + label);
  c_rejected_ = registry_->GetCounter("dema.rejected" + label);
  c_quarantined_ = registry_->GetCounter("dema.quarantined" + label);
  c_readmitted_ = registry_->GetCounter("dema.readmitted" + label);
  h_select_us_ = registry_->GetHistogram("root.select_us" + label);

  // Fail fast on option errors: a bad quantile must not poison a running
  // cluster per-window after synopses already shipped.
  if (options_.quantiles.empty()) {
    init_status_ = Status::InvalidArgument("no quantiles configured");
  }
  for (double q : options_.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      init_status_ = Status::InvalidArgument(
          "quantile " + std::to_string(q) + " outside (0, 1]");
      break;
    }
  }
  if (init_status_.ok() && options_.use_naive_selection &&
      options_.quantiles.size() != 1) {
    init_status_ =
        Status::InvalidArgument("naive selection supports exactly one quantile");
  }

  for (size_t i = 0; i < options_.locals.size(); ++i) {
    local_index_[options_.locals[i]] = i;
  }
  health_.assign(options_.locals.size(), LocalReputation{});
  if (options_.per_node_gamma) {
    node_gamma_.assign(options_.locals.size(),
                       AdaptiveGammaController(options_.initial_gamma,
                                               options_.gamma_options));
    node_last_broadcast_.assign(options_.locals.size(), gamma_.current());
  }
}

DemaRootStats DemaRootNode::stats() const {
  DemaRootStats s;
  s.windows = c_windows_->Value();
  s.synopsis_slices = c_synopsis_slices_->Value();
  s.candidate_slices = c_candidate_slices_->Value();
  s.candidate_events = c_candidate_events_->Value();
  s.global_events = c_global_events_->Value();
  s.classes.separate = c_class_separate_->Value();
  s.classes.compound = c_class_compound_->Value();
  s.classes.cover = c_class_cover_->Value();
  s.gamma_updates_sent = c_gamma_updates_sent_->Value();
  s.duplicates_ignored = c_duplicates_ignored_->Value();
  s.clock_skew_windows = c_clock_skew_windows_->Value();
  s.retries = c_retries_->Value();
  s.degraded_windows = c_degraded_windows_->Value();
  s.send_failures = c_send_failures_->Value();
  s.rejected_payloads = c_rejected_->Value();
  s.quarantines = c_quarantined_->Value();
  s.readmissions = c_readmitted_->Value();
  return s;
}

void DemaRootNode::MarkEmitted(net::WindowId id) {
  if (id == emitted_below_) {
    ++emitted_below_;
    while (emitted_above_.erase(emitted_below_) > 0) ++emitted_below_;
  } else if (id > emitted_below_) {
    emitted_above_.insert(id);
  }
  if (options_.quarantine_strikes > 0) {
    // Quarantine time is measured in emitted windows (the only clock every
    // configuration shares); the last one opens probation.
    for (LocalReputation& h : health_) {
      if (h.state == LocalReputation::State::kQuarantined &&
          h.probation_windows_left > 0 && --h.probation_windows_left == 0) {
        h.state = LocalReputation::State::kProbation;
        h.strikes = 0;
      }
    }
  }
}

bool DemaRootNode::IsEmitted(net::WindowId id) const {
  return id < emitted_below_ || emitted_above_.count(id) > 0;
}

Status DemaRootNode::RejectPayload(NodeId src, const char* reason) {
  c_rejected_->Increment();
  std::string by_reason = std::string("dema.rejected{reason=") + reason;
  if (!options_.instrument_label.empty()) {
    by_reason += "," + options_.instrument_label;
  }
  registry_->GetCounter(by_reason + "}")->Increment();
  if (options_.quarantine_strikes == 0) return Status::OK();
  auto it = local_index_.find(src);
  if (it == local_index_.end()) return Status::OK();
  return AddStrike(it->second);
}

Status DemaRootNode::AddStrike(size_t idx) {
  LocalReputation& h = health_[idx];
  switch (h.state) {
    case LocalReputation::State::kQuarantined:
      // Already excluded; further rejections carry no new information.
      return Status::OK();
    case LocalReputation::State::kProbation:
      // One strike during probation re-quarantines immediately — the local
      // has not earned back the benefit of a fresh strike budget.
      return QuarantineLocal(idx);
    case LocalReputation::State::kHealthy:
      if (++h.strikes >= options_.quarantine_strikes) {
        return QuarantineLocal(idx);
      }
      return Status::OK();
  }
  return Status::OK();
}

bool DemaRootNode::IsQuarantined(size_t idx) const {
  return options_.quarantine_strikes > 0 &&
         health_[idx].state == LocalReputation::State::kQuarantined;
}

uint64_t DemaRootNode::ExcludedSizeEstimate(size_t idx) const {
  const LocalReputation& h = health_[idx];
  return h.last_known_size > 0 ? h.last_known_size : h.last_claimed_size;
}

bool DemaRootNode::SynopsesComplete(const PendingWindow& w) const {
  if (w.synopsis_from.empty()) return false;
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    if (!w.synopsis_from[i] && !IsQuarantined(i)) return false;
  }
  return true;
}

Status DemaRootNode::MaybeRunIdentification(net::WindowId id,
                                            PendingWindow* w) {
  if (w->requests_sent) return Status::OK();
  if (!SynopsesComplete(*w)) return Status::OK();
  // Charge an excluded-size estimate for every quarantined local the window
  // never heard from: the emitted result is exact over the contributors, and
  // the estimate bounds its rank error against the true global window.
  if (w->excluded_from.empty()) {
    w->excluded_from.assign(options_.locals.size(), false);
  }
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    if (IsQuarantined(i) && !w->synopsis_from[i] && !w->excluded_from[i]) {
      w->excluded_from[i] = true;
      w->excluded_events += ExcludedSizeEstimate(i);
    }
  }
  return RunIdentification(id, w);
}

Status DemaRootNode::QuarantineLocal(size_t idx) {
  LocalReputation& h = health_[idx];
  h.state = LocalReputation::State::kQuarantined;
  h.strikes = 0;
  h.probation_windows_left = std::max<uint64_t>(options_.probation_windows, 1);
  h.clean_windows_needed =
      std::max<uint32_t>(options_.probation_clean_windows, 1);
  c_quarantined_->Increment();
  const NodeId node = options_.locals[idx];

  // Sweep pending windows: identification and completion must stop waiting
  // for the excluded local right now, or every in-flight window stalls into
  // its deadline. Ids are snapshotted first — completing or degrading a
  // window erases it from `pending_`.
  std::vector<net::WindowId> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, w] : pending_) ids.push_back(id);
  for (net::WindowId id : ids) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    PendingWindow& w = it->second;
    if (!w.requests_sent) {
      // Still collecting synopses: drop the local's accepted contribution
      // (its data is no longer trusted) and release its retained window.
      if (!w.synopsis_from.empty() && w.synopsis_from[idx]) {
        uint64_t stripped = 0;
        auto keep = w.slices.begin();
        for (const SliceSynopsis& s : w.slices) {
          if (s.node == node) {
            stripped += s.count;
          } else {
            *keep++ = s;
          }
        }
        w.slices.erase(keep, w.slices.end());
        w.synopsis_from[idx] = false;
        --w.synopses_received;
        w.global_size -= stripped;
        if (w.excluded_from.empty()) {
          w.excluded_from.assign(options_.locals.size(), false);
        }
        w.excluded_from[idx] = true;
        w.excluded_events += stripped;
        CandidateRequest release;
        release.window_id = id;
        (void)transport_->Send(net::MakeMessage(
            net::MessageType::kCandidateRequest, options_.id, node, release));
      }
      DEMA_RETURN_NOT_OK(MaybeRunIdentification(id, &it->second));
    } else {
      // Candidates already requested. If the window still waits on this
      // local's reply, it will never arrive honestly — emit degraded from
      // whatever did (EmitDegraded also releases the local's retained
      // window).
      auto req_it = w.request_indices.find(node);
      const bool waiting = req_it != w.request_indices.end() &&
                           (w.reply_from.empty() || !w.reply_from[idx]);
      if (waiting) {
        DEMA_RETURN_NOT_OK(EmitDegraded(id, &w, "quarantine"));
      }
    }
  }
  return Status::OK();
}

void DemaRootNode::CreditCleanWindow(const PendingWindow& w) {
  if (options_.quarantine_strikes == 0) return;
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    LocalReputation& h = health_[i];
    if (h.state != LocalReputation::State::kProbation) continue;
    if (w.synopsis_from.empty() || !w.synopsis_from[i]) continue;
    const bool replied_clean =
        w.request_indices.count(options_.locals[i]) == 0 ||
        (!w.reply_from.empty() && w.reply_from[i]);
    if (!replied_clean) continue;
    if (h.clean_windows_needed > 0 && --h.clean_windows_needed == 0) {
      h.state = LocalReputation::State::kHealthy;
      h.strikes = 0;
      c_readmitted_->Increment();
    }
  }
}

Status DemaRootNode::SendBestEffort(net::Message m) {
  Status st = transport_->Send(std::move(m));
  if (st.ok() || options_.deadline_ticks == 0) return st;
  c_send_failures_->Increment();
  return Status::OK();
}

uint64_t DemaRootNode::current_gamma_for(NodeId node) const {
  if (options_.per_node_gamma) {
    auto it = local_index_.find(node);
    if (it != local_index_.end()) return node_gamma_[it->second].current();
  }
  return gamma_.current();
}

DurationUs DemaRootNode::EmitLatencyUs(TimestampUs close_us,
                                       obs::WindowTrace* trace) {
  TimestampUs now = clock_->NowUs();
  trace->emit_us = static_cast<uint64_t>(std::max<TimestampUs>(0, now));
  if (now < close_us) {
    // A peer's close stamp ran ahead of the root clock (possible across
    // processes despite the shared epoch); clamp instead of underflowing.
    c_clock_skew_windows_->Increment();
    trace->clock_skew = true;
    trace->latency_us = 0;
    return 0;
  }
  trace->latency_us = static_cast<uint64_t>(now - close_us);
  return now - close_us;
}

void DemaRootNode::RecordTrace(PendingWindow* w) {
  if (tracer_ == nullptr) return;
  w->trace.global_size = w->global_size;
  w->trace.synopses = w->synopses_received;
  w->trace.local_close_us =
      static_cast<uint64_t>(std::max<TimestampUs>(0, w->last_close_time_us));
  tracer_->Record(w->trace);
}

Status DemaRootNode::OnMessage(const net::Message& msg) {
  if (!init_status_.ok()) return init_status_;
  if (dedup_.IsDuplicate(msg.src, msg.seq)) {
    // Transport-level retransmission (same sequence number): absorb it
    // before it reaches the protocol handlers at all.
    c_duplicates_ignored_->Increment();
    return Status::OK();
  }
  net::Reader r(msg.payload_bytes());
  // A payload that fails to decode is corruption evidence, not a root
  // failure: drop it, count it, strike the sender. The retry/deadline
  // machinery recovers the window exactly as if the message were lost.
  switch (msg.type) {
    case net::MessageType::kSynopsisBatch: {
      auto batch = SynopsisBatch::Deserialize(&r);
      if (!batch.ok()) return RejectPayload(msg.src, "decode");
      return HandleSynopsisBatch(*batch, msg.src);
    }
    case net::MessageType::kCandidateReply: {
      auto reply = CandidateReply::Deserialize(&r);
      if (!reply.ok()) return RejectPayload(msg.src, "decode");
      return HandleCandidateReply(std::move(reply).MoveValueUnsafe(), msg.src);
    }
    case net::MessageType::kGammaSyncRequest: {
      auto sync = GammaSyncRequest::Deserialize(&r);
      if (!sync.ok()) return RejectPayload(msg.src, "decode");
      return HandleGammaSync(*sync, msg.src);
    }
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("root got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status DemaRootNode::HandleGammaSync(const GammaSyncRequest& sync, NodeId src) {
  if (local_index_.find(src) == local_index_.end()) {
    return RejectPayload(src, "unknown_node");
  }
  if (sync.node != src) return RejectPayload(src, "node_mismatch");
  // A restarted local missed any broadcasts while it was down; answer with
  // the current factor. effective_from 0 lets the local clamp the update to
  // its own emission frontier.
  GammaUpdate update;
  update.effective_from = 0;
  update.gamma = static_cast<uint32_t>(std::min<uint64_t>(
      std::max<uint64_t>(current_gamma_for(sync.node), 2), UINT32_MAX));
  DEMA_RETURN_NOT_OK(SendBestEffort(net::MakeMessage(
      net::MessageType::kGammaUpdate, options_.id, sync.node, update)));
  c_gamma_updates_sent_->Increment();
  return Status::OK();
}

void DemaRootNode::NoteWindowHorizon(net::WindowId last) {
  if (options_.deadline_ticks == 0) return;
  any_window_seen_ = true;
  highest_window_seen_ = std::max(highest_window_seen_, last);
}

Status DemaRootNode::HandleSynopsisBatch(const SynopsisBatch& batch,
                                         NodeId src) {
  auto idx_it = local_index_.find(src);
  if (idx_it == local_index_.end()) {
    // An unknown sender (misrouted or forged frame) must not take the run
    // down; drop the payload and keep the window alive for the real locals.
    return RejectPayload(src, "unknown_node");
  }
  const size_t idx = idx_it->second;
  if (const char* reason =
          ValidateSynopsisBatch(batch, src, options_.strict_validation)) {
    // The payload is untrusted, but its claimed size is still the only
    // available exclusion estimate if this strike ends in quarantine.
    health_[idx].last_claimed_size = batch.local_window_size;
    return RejectPayload(src, reason);
  }
  if (IsQuarantined(idx)) {
    // Remember the claimed size as an (untrusted) exclusion estimate, and
    // release the local's retained window — it will never be queried.
    health_[idx].last_claimed_size = batch.local_window_size;
    CandidateRequest release;
    release.window_id = batch.window_id;
    (void)transport_->Send(net::MakeMessage(
        net::MessageType::kCandidateRequest, options_.id, src, release));
    return RejectPayload(src, "quarantined");
  }
  if (IsEmitted(batch.window_id)) {
    // A delayed or retransmitted synopsis for a window that already emitted
    // (possibly degraded); it must not resurrect a pending entry.
    if (options_.tolerate_duplicates) {
      c_duplicates_ignored_->Increment();
      return Status::OK();
    }
    return Status::AlreadyExists("synopsis for emitted window " +
                                 std::to_string(batch.window_id));
  }
  any_window_seen_ = true;
  highest_window_seen_ = std::max(highest_window_seen_, batch.window_id);
  PendingWindow& w = pending_[batch.window_id];
  if (w.synopsis_from.empty()) {
    w.synopsis_from.assign(options_.locals.size(), false);
    w.trace.window_id = batch.window_id;
    w.trace.first_synopsis_us =
        static_cast<uint64_t>(std::max<TimestampUs>(0, clock_->NowUs()));
  }
  if (w.synopsis_from[idx]) {
    if (options_.tolerate_duplicates) {
      c_duplicates_ignored_->Increment();
      return Status::OK();
    }
    return Status::AlreadyExists("duplicate synopsis from node " +
                                 std::to_string(batch.node));
  }
  w.synopsis_from[idx] = true;
  ++w.synopses_received;
  health_[idx].last_known_size = batch.local_window_size;
  w.global_size += batch.local_window_size;
  w.last_close_time_us = std::max(w.last_close_time_us, batch.close_time_us);
  w.slices.insert(w.slices.end(), batch.slices.begin(), batch.slices.end());
  c_synopsis_slices_->Increment(batch.slices.size());
  w.trace.last_synopsis_us =
      static_cast<uint64_t>(std::max<TimestampUs>(0, clock_->NowUs()));
  if (options_.deadline_ticks > 0) {
    // Progress: push the deadline out and refund the retry budget.
    w.next_check_tick = tick_ + options_.deadline_ticks;
    w.retries = 0;
  }

  return MaybeRunIdentification(batch.window_id, &w);
}

Status DemaRootNode::RunIdentification(net::WindowId id, PendingWindow* w) {
  if (w->global_size == 0) {
    // Every contributing local window was empty; emit an empty result
    // directly — flagged degraded when emptiness is an artifact of
    // quarantine exclusions rather than a genuinely empty global window.
    sim::WindowOutput out;
    out.window_id = id;
    out.global_size = 0;
    out.quantiles = options_.quantiles;
    out.values.assign(options_.quantiles.size(), 0.0);
    if (w->excluded_events > 0) {
      out.degraded = true;
      out.degrade_cause = "quarantine";
      out.rank_error_bound = w->excluded_events;
      c_degraded_windows_->Increment();
      w->trace.degraded = true;
    }
    out.latency_us = EmitLatencyUs(w->last_close_time_us, &w->trace);
    c_windows_->Increment();
    RecordTrace(w);
    MarkEmitted(id);
    if (callback_) callback_(out);
    pending_.erase(id);
    return Status::OK();
  }

  w->trace.identification_us =
      static_cast<uint64_t>(std::max<TimestampUs>(0, clock_->NowUs()));

  std::vector<uint64_t> ranks;
  ranks.reserve(options_.quantiles.size());
  for (double q : options_.quantiles) {
    ranks.push_back(stream::QuantileRank(q, w->global_size));
  }

  if (options_.use_naive_selection) {
    DEMA_ASSIGN_OR_RETURN(
        w->cut, WindowCut::SelectNaiveOverlap(w->slices, w->global_size, ranks[0]));
  } else {
    DEMA_ASSIGN_OR_RETURN(w->cut,
                          WindowCut::SelectMulti(w->slices, w->global_size, ranks));
  }

  c_candidate_slices_->Increment(w->cut.candidates.size());
  c_candidate_events_->Increment(w->cut.candidate_event_count);
  c_class_separate_->Increment(w->cut.classes.separate);
  c_class_compound_->Increment(w->cut.classes.compound);
  c_class_cover_->Increment(w->cut.classes.cover);
  w->trace.candidate_slices = w->cut.candidates.size();
  w->trace.candidate_events = w->cut.candidate_event_count;

  // Group candidate slices by owning node; indices within one node ascend
  // because synopsis batches list a node's slices in order and the candidate
  // list preserves input order.
  std::map<NodeId, std::vector<uint32_t>> per_node;
  for (size_t flat : w->cut.candidates) {
    const SliceSynopsis& s = w->slices[flat];
    per_node[s.node].push_back(s.index);
  }
  // Kept so the deadline machinery can retransmit identical requests.
  w->request_indices = per_node;

  // Every node with a retained (non-empty) window gets a request; an empty
  // index list releases the window's memory on that node.
  std::vector<uint64_t> local_sizes(options_.locals.size(), 0);
  for (const SliceSynopsis& s : w->slices) {
    local_sizes[local_index_[s.node]] += s.count;
  }
  w->expected_replies = 0;
  w->requests_sent = true;
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    NodeId node = options_.locals[i];
    if (local_sizes[i] == 0) continue;  // nothing retained there
    CandidateRequest req;
    req.window_id = id;
    auto it = per_node.find(node);
    if (it != per_node.end()) {
      req.slice_indices = std::move(it->second);
      ++w->expected_replies;
    }
    DEMA_RETURN_NOT_OK(SendBestEffort(net::MakeMessage(
        net::MessageType::kCandidateRequest, options_.id, node, req)));
  }
  if (w->expected_replies == 0) {
    return Status::Internal("window-cut produced no candidates for window " +
                            std::to_string(id));
  }
  if (options_.deadline_ticks > 0) {
    w->next_check_tick = tick_ + options_.deadline_ticks;
    w->retries = 0;
  }
  return Status::OK();
}

Status DemaRootNode::HandleCandidateReply(CandidateReply reply, NodeId src) {
  auto idx_it = local_index_.find(src);
  if (idx_it == local_index_.end()) {
    // Unknown sender: drop the payload, never the run (the window completes
    // from the real locals' replies).
    return RejectPayload(src, "unknown_node");
  }
  const size_t idx = idx_it->second;
  // Identity is checkable without window context — catch a tampered node
  // field even when the window already emitted.
  if (reply.node != src) return RejectPayload(src, "node_mismatch");
  if (IsQuarantined(idx)) return RejectPayload(src, "quarantined");
  auto it = pending_.find(reply.window_id);
  if (it == pending_.end()) {
    if (options_.tolerate_duplicates) {
      // The window already completed; this is a retransmitted reply.
      c_duplicates_ignored_->Increment();
      return Status::OK();
    }
    return Status::NotFound("reply for unknown window " +
                            std::to_string(reply.window_id));
  }
  PendingWindow& w = it->second;
  if (!w.requests_sent) {
    // No request is out yet, so no honest local can be replying.
    return RejectPayload(src, "unexpected_reply");
  }
  auto req_it = w.request_indices.find(src);
  if (req_it == w.request_indices.end()) {
    // This local holds no candidate slices for the window; accepting the
    // run would shift every rank. (Before validation existed, such a reply
    // poisoned the completion count.)
    return RejectPayload(src, "unexpected_reply");
  }
  // Re-derive the synopses of exactly the slices this local was asked for;
  // the reply must agree with what it declared at identification time.
  std::vector<SliceSynopsis> requested;
  requested.reserve(req_it->second.size());
  size_t next_requested = 0;
  for (const SliceSynopsis& s : w.slices) {
    if (s.node != src) continue;
    if (next_requested < req_it->second.size() &&
        s.index == req_it->second[next_requested]) {
      requested.push_back(s);
      ++next_requested;
    }
  }
  if (next_requested != req_it->second.size()) {
    return Status::Internal("candidate request indices for node " +
                            std::to_string(src) +
                            " not found among window synopses");
  }
  if (const char* reason = ValidateCandidateReply(
          reply, src, requested, options_.strict_validation)) {
    return RejectPayload(src, reason);
  }
  if (w.reply_from.empty()) w.reply_from.assign(options_.locals.size(), false);
  if (w.reply_from[idx]) {
    if (options_.tolerate_duplicates) {
      c_duplicates_ignored_->Increment();
      return Status::OK();
    }
    return Status::AlreadyExists("duplicate reply from node " +
                                 std::to_string(reply.node));
  }
  w.reply_from[idx] = true;
  w.reply_runs.push_back(std::move(reply.events));
  ++w.trace.replies;
  uint64_t now =
      static_cast<uint64_t>(std::max<TimestampUs>(0, clock_->NowUs()));
  if (w.trace.first_reply_us == 0) w.trace.first_reply_us = now;
  w.trace.last_reply_us = now;
  if (options_.deadline_ticks > 0) {
    w.next_check_tick = tick_ + options_.deadline_ticks;
    w.retries = 0;
  }
  if (w.reply_runs.size() == w.expected_replies) {
    return CompleteWindow(reply.window_id, &w);
  }
  return Status::OK();
}

Status DemaRootNode::CompleteWindow(net::WindowId id, PendingWindow* w) {
  // Replies are pre-sorted runs (one per node); rank-select straight off the
  // loser tree — the merged candidate sequence is never materialized. The
  // window-cut consistency check works on summed run sizes instead.
  uint64_t total = 0;
  for (const auto& run : w->reply_runs) total += run.size();
  if (total != w->cut.candidate_event_count) {
    return Status::Internal("candidate reply events (" + std::to_string(total) +
                            ") do not match window-cut expectation (" +
                            std::to_string(w->cut.candidate_event_count) + ")");
  }

  std::vector<uint64_t> within_ranks;
  within_ranks.reserve(w->cut.selections.size());
  for (const RankSelection& sel : w->cut.selections) {
    uint64_t within = sel.rank - sel.below_count;  // 1-based among candidates
    if (within < 1 || within > total) {
      return Status::Internal("selection rank " + std::to_string(within) +
                              " outside merged candidates [1, " +
                              std::to_string(total) + "]");
    }
    within_ranks.push_back(within);
  }
  auto select_start = std::chrono::steady_clock::now();
  DEMA_ASSIGN_OR_RETURN(
      std::vector<Event> picked,
      stream::SelectRanksFromRuns(std::move(w->reply_runs), within_ranks));
  h_select_us_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - select_start)
          .count()));

  sim::WindowOutput out;
  out.window_id = id;
  out.global_size = w->global_size;
  out.quantiles = options_.quantiles;
  out.values.reserve(options_.quantiles.size());
  for (const Event& e : picked) out.values.push_back(e.value);
  if (w->excluded_events > 0) {
    // Exact over the contributing locals, but a quarantined local's events
    // were excluded — flag the emit so no consumer mistakes it for the true
    // global quantile. The exclusion count bounds the rank error.
    out.degraded = true;
    out.degrade_cause = "quarantine";
    out.rank_error_bound = w->excluded_events;
    c_degraded_windows_->Increment();
    w->trace.degraded = true;
  }
  out.latency_us = EmitLatencyUs(w->last_close_time_us, &w->trace);

  c_windows_->Increment();
  c_global_events_->Increment(w->global_size);
  RecordTrace(w);
  MarkEmitted(id);
  uint64_t global_size = w->global_size;
  uint64_t candidate_slices = w->cut.candidates.size();
  PendingWindow completed = std::move(*w);
  pending_.erase(id);
  if (callback_) callback_(out);
  // An exact completion is the probation currency: every local that
  // contributed cleanly earns a credit toward re-admission.
  CreditCleanWindow(completed);

  if (options_.adaptive_gamma && options_.per_node_gamma) {
    DEMA_RETURN_NOT_OK(AdaptPerNode(id, completed));
  } else if (options_.adaptive_gamma) {
    uint64_t next = gamma_.Observe(global_size, candidate_slices);
    if (next != last_broadcast_gamma_) {
      DEMA_RETURN_NOT_OK(BroadcastGamma(id + 1, next));
      last_broadcast_gamma_ = next;
    }
  }
  return Status::OK();
}

Status DemaRootNode::AdaptPerNode(net::WindowId completed_window,
                                  const PendingWindow& w) {
  // Per-node observations: l_i from the node's slice counts, m_i from its
  // share of the candidate set. The per-node cost model mirrors the global
  // one — identification ships 2·l_i/γ_i synopsis events from node i,
  // calculation ships m_i·(γ_i − 2) of its events.
  std::vector<uint64_t> local_size(options_.locals.size(), 0);
  std::vector<uint64_t> local_candidates(options_.locals.size(), 0);
  for (const SliceSynopsis& s : w.slices) {
    local_size[local_index_[s.node]] += s.count;
  }
  for (size_t flat : w.cut.candidates) {
    local_candidates[local_index_[w.slices[flat].node]] += 1;
  }
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    if (local_size[i] == 0) continue;  // no observation from an idle node
    uint64_t next = node_gamma_[i].Observe(local_size[i], local_candidates[i]);
    if (next == node_last_broadcast_[i]) continue;
    GammaUpdate update;
    update.effective_from = completed_window + 1;
    update.gamma = static_cast<uint32_t>(std::min<uint64_t>(next, UINT32_MAX));
    DEMA_RETURN_NOT_OK(SendBestEffort(net::MakeMessage(
        net::MessageType::kGammaUpdate, options_.id, options_.locals[i], update)));
    node_last_broadcast_[i] = next;
    c_gamma_updates_sent_->Increment();
  }
  return Status::OK();
}

Status DemaRootNode::BroadcastGamma(net::WindowId effective_from, uint64_t gamma) {
  GammaUpdate update;
  update.effective_from = effective_from;
  update.gamma = static_cast<uint32_t>(std::min<uint64_t>(gamma, UINT32_MAX));
  // Counts messages, not broadcasts, matching AdaptPerNode's accounting.
  for (NodeId node : options_.locals) {
    DEMA_RETURN_NOT_OK(SendBestEffort(net::MakeMessage(
        net::MessageType::kGammaUpdate, options_.id, node, update)));
    c_gamma_updates_sent_->Increment();
  }
  return Status::OK();
}

Status DemaRootNode::Tick() {
  if (!init_status_.ok()) return init_status_;
  if (options_.deadline_ticks == 0) return Status::OK();
  ++tick_;
  // Gap-fill: a window whose every synopsis was dropped has no pending entry
  // and would otherwise stall silently. Create one for each known-to-exist,
  // not-yet-emitted id so the deadline machinery sees it.
  if (any_window_seen_) {
    for (net::WindowId id = emitted_below_; id <= highest_window_seen_; ++id) {
      if (IsEmitted(id) || pending_.count(id) > 0) continue;
      PendingWindow& w = pending_[id];
      w.synopsis_from.assign(options_.locals.size(), false);
      w.trace.window_id = id;
      w.next_check_tick = tick_ + options_.deadline_ticks;
    }
  }
  std::vector<std::pair<net::WindowId, std::string>> to_degrade;
  for (auto& [id, w] : pending_) {
    if (tick_ < w.next_check_tick) continue;
    if (w.retries >= options_.max_retries) {
      std::string cause;
      if (w.requests_sent) {
        cause = w.reply_runs.empty() ? "replies_lost" : "replies_partial";
      } else {
        cause = w.synopses_received == 0 ? "synopses_lost" : "synopses_partial";
      }
      to_degrade.emplace_back(id, std::move(cause));
      continue;
    }
    ++w.retries;
    // Exponential backoff between recovery attempts.
    w.next_check_tick = tick_ + (options_.deadline_ticks << w.retries);
    if (!w.requests_sent) {
      // Nothing to re-request in the synopsis phase: a crashed local re-ships
      // its windows after restarting, so the backoff just extends the wait.
      continue;
    }
    for (const auto& [node, indices] : w.request_indices) {
      if (!w.reply_from.empty() && w.reply_from[local_index_[node]]) continue;
      CandidateRequest req;
      req.window_id = id;
      req.slice_indices = indices;
      c_retries_->Increment();
      DEMA_RETURN_NOT_OK(SendBestEffort(net::MakeMessage(
          net::MessageType::kCandidateRequest, options_.id, node, req)));
    }
  }
  for (auto& [id, cause] : to_degrade) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    DEMA_RETURN_NOT_OK(EmitDegraded(id, &it->second, cause));
  }
  return Status::OK();
}

Status DemaRootNode::EmitDegraded(net::WindowId id, PendingWindow* w,
                                  const std::string& cause) {
  sim::WindowOutput out;
  out.window_id = id;
  out.global_size = w->global_size;
  out.quantiles = options_.quantiles;
  out.degraded = true;
  out.degrade_cause = cause;
  uint64_t arrived = 0;
  for (const auto& run : w->reply_runs) arrived += run.size();
  if (w->requests_sent && arrived > 0) {
    // Partial candidate data: answer from what arrived. Each missing
    // candidate event can shift a value's true rank by at most one, so the
    // shortfall bounds the rank error. Same no-materialization selection as
    // the healthy path, with ranks clamped into the arrived range.
    out.rank_error_bound = w->cut.candidate_event_count > arrived
                               ? w->cut.candidate_event_count - arrived
                               : 0;
    std::vector<uint64_t> within_ranks;
    within_ranks.reserve(w->cut.selections.size());
    for (const RankSelection& sel : w->cut.selections) {
      uint64_t within = sel.rank > sel.below_count ? sel.rank - sel.below_count : 1;
      within_ranks.push_back(
          std::min<uint64_t>(std::max<uint64_t>(within, 1), arrived));
    }
    auto select_start = std::chrono::steady_clock::now();
    DEMA_ASSIGN_OR_RETURN(
        std::vector<Event> picked,
        stream::SelectRanksFromRuns(std::move(w->reply_runs), within_ranks));
    h_select_us_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - select_start)
            .count()));
    for (const Event& e : picked) out.values.push_back(e.value);
  } else if (!w->slices.empty()) {
    // Synopses only: walk the slices in ascending first-value order,
    // accumulate counts up to the target rank, and answer with the
    // containing slice's first value. The true value can sit anywhere inside
    // that slice, so its size bounds the rank error.
    std::vector<const SliceSynopsis*> order;
    order.reserve(w->slices.size());
    for (const SliceSynopsis& s : w->slices) order.push_back(&s);
    std::sort(order.begin(), order.end(),
              [](const SliceSynopsis* a, const SliceSynopsis* b) {
                if (a->first.value != b->first.value)
                  return a->first.value < b->first.value;
                if (a->node != b->node) return a->node < b->node;
                return a->index < b->index;
              });
    uint64_t observed = 0;
    for (const SliceSynopsis* s : order) observed += s->count;
    for (double q : options_.quantiles) {
      uint64_t target = stream::QuantileRank(q, observed);
      uint64_t cum = 0;
      double value = 0.0;
      for (const SliceSynopsis* s : order) {
        cum += s->count;
        value = s->first.value;
        if (cum >= target) {
          out.rank_error_bound = std::max(out.rank_error_bound, s->count);
          break;
        }
      }
      out.values.push_back(value);
    }
  } else {
    // Nothing arrived at all; emit an explicitly-empty degraded result.
    out.values.assign(options_.quantiles.size(), 0.0);
    out.rank_error_bound = 0;
  }
  // Quarantine exclusions shift true ranks on top of whatever this window
  // already lost; the bounds compose additively.
  out.rank_error_bound += w->excluded_events;
  out.latency_us = EmitLatencyUs(w->last_close_time_us, &w->trace);

  // Release retained windows on locals we will no longer query (best
  // effort: the node may be down, and a restarted one re-serves or prunes).
  std::vector<uint64_t> local_sizes(options_.locals.size(), 0);
  for (const SliceSynopsis& s : w->slices) {
    local_sizes[local_index_[s.node]] += s.count;
  }
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    if (local_sizes[i] == 0) continue;
    if (!w->reply_from.empty() && w->reply_from[i]) continue;
    CandidateRequest release;
    release.window_id = id;
    (void)transport_->Send(net::MakeMessage(net::MessageType::kCandidateRequest,
                                            options_.id, options_.locals[i],
                                            release));
  }

  c_windows_->Increment();
  c_degraded_windows_->Increment();
  c_global_events_->Increment(w->global_size);
  w->trace.degraded = true;
  RecordTrace(w);
  MarkEmitted(id);
  pending_.erase(id);
  if (callback_) callback_(out);
  return Status::OK();
}

}  // namespace dema::core
