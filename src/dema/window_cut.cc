#include "dema/window_cut.h"

#include <algorithm>
#include <numeric>

namespace dema::core {

namespace {

/// Sorted key array with prefix weights, supporting the four queries the
/// rank bounds need: #keys < v, #keys <= v, weight of keys < v, weight of
/// keys <= v. Keys are full events (total order), so cross-slice ties cannot
/// occur.
class KeyIndex {
 public:
  KeyIndex(const std::vector<SliceSynopsis>& slices, bool use_first) {
    entries_.reserve(slices.size());
    for (const SliceSynopsis& s : slices) {
      entries_.push_back(Entry{use_first ? s.first : s.last, s.count});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    prefix_weight_.resize(entries_.size() + 1, 0);
    for (size_t i = 0; i < entries_.size(); ++i) {
      prefix_weight_[i + 1] = prefix_weight_[i] + entries_[i].weight;
    }
  }

  /// Number of keys strictly below v.
  uint64_t CountLt(const Event& v) const { return IndexLt(v); }
  /// Number of keys at or below v.
  uint64_t CountLe(const Event& v) const { return IndexLe(v); }
  /// Total weight of keys strictly below v.
  uint64_t WeightLt(const Event& v) const { return prefix_weight_[IndexLt(v)]; }
  /// Total weight of keys at or below v.
  uint64_t WeightLe(const Event& v) const { return prefix_weight_[IndexLe(v)]; }

 private:
  struct Entry {
    Event key;
    uint64_t weight;
  };
  size_t IndexLt(const Event& v) const {
    return static_cast<size_t>(std::lower_bound(entries_.begin(), entries_.end(), v,
                                                [](const Entry& e, const Event& x) {
                                                  return e.key < x;
                                                }) -
                               entries_.begin());
  }
  size_t IndexLe(const Event& v) const {
    return static_cast<size_t>(std::upper_bound(entries_.begin(), entries_.end(), v,
                                                [](const Event& x, const Entry& e) {
                                                  return x < e.key;
                                                }) -
                               entries_.begin());
  }
  std::vector<Entry> entries_;
  std::vector<uint64_t> prefix_weight_;
};

Status ValidateInput(const std::vector<SliceSynopsis>& slices, uint64_t global_size,
                     uint64_t target_rank) {
  uint64_t total = 0;
  for (const SliceSynopsis& s : slices) {
    if (s.count == 0) return Status::InvalidArgument("slice with zero events");
    if (s.last < s.first) {
      return Status::InvalidArgument("slice with last < first");
    }
    total += s.count;
  }
  if (total != global_size) {
    return Status::InvalidArgument(
        "slice counts sum to " + std::to_string(total) + ", expected global size " +
        std::to_string(global_size));
  }
  if (global_size == 0) return Status::InvalidArgument("empty global window");
  if (target_rank < 1 || target_rank > global_size) {
    return Status::OutOfRange("target rank " + std::to_string(target_rank) +
                              " outside [1, " + std::to_string(global_size) + "]");
  }
  return Status::OK();
}

}  // namespace

std::vector<RankBounds> WindowCut::ComputeRankBounds(
    const std::vector<SliceSynopsis>& slices) {
  std::vector<RankBounds> bounds(slices.size());
  if (slices.empty()) return bounds;
  KeyIndex firsts(slices, /*use_first=*/true);
  KeyIndex lasts(slices, /*use_first=*/false);

  for (size_t i = 0; i < slices.size(); ++i) {
    const SliceSynopsis& s = slices[i];
    // Events definitely below s.first: whole slices whose last < s.first,
    // plus one event (the first) for slices straddling s.first. A slice T
    // with f_T < s.first <= l_T contributes exactly its first event as
    // provably below; nothing else about T is certain.
    uint64_t whole_below = lasts.WeightLt(s.first);
    uint64_t straddle_firsts = firsts.CountLt(s.first) - lasts.CountLt(s.first);
    bounds[i].min_rank = 1 + whole_below + straddle_firsts;

    // Events possibly at or below s.last: whole slices whose first <= s.last,
    // minus one event (the last) for slices whose last lies above s.last —
    // that last event is provably above.
    uint64_t possible = firsts.WeightLe(s.last);
    uint64_t straddle_lasts = firsts.CountLe(s.last) - lasts.CountLe(s.last);
    bounds[i].max_rank = possible - straddle_lasts;
  }
  return bounds;
}

Result<WindowCutResult> WindowCut::Select(const std::vector<SliceSynopsis>& slices,
                                          uint64_t global_size,
                                          uint64_t target_rank) {
  return SelectMulti(slices, global_size, {target_rank});
}

Result<WindowCutResult> WindowCut::SelectMulti(
    const std::vector<SliceSynopsis>& slices, uint64_t global_size,
    const std::vector<uint64_t>& target_ranks) {
  if (target_ranks.empty()) {
    return Status::InvalidArgument("no target ranks given");
  }
  for (uint64_t rank : target_ranks) {
    DEMA_RETURN_NOT_OK(ValidateInput(slices, global_size, rank));
  }

  std::vector<RankBounds> bounds = ComputeRankBounds(slices);

  WindowCutResult result;
  result.classes = ClassifySlices(slices);
  std::vector<bool> is_candidate(slices.size(), false);
  for (size_t i = 0; i < slices.size(); ++i) {
    for (uint64_t rank : target_ranks) {
      if (bounds[i].min_rank <= rank && rank <= bounds[i].max_rank) {
        is_candidate[i] = true;
        break;
      }
    }
  }
  for (size_t i = 0; i < slices.size(); ++i) {
    if (is_candidate[i]) {
      result.candidates.push_back(i);
      result.candidate_event_count += slices[i].count;
    }
  }
  // Per-rank below counts over excluded slices only: candidates' events are
  // all transferred, so the selection rank must not skip them.
  result.selections.reserve(target_ranks.size());
  for (uint64_t rank : target_ranks) {
    RankSelection sel;
    sel.rank = rank;
    for (size_t i = 0; i < slices.size(); ++i) {
      if (!is_candidate[i] && bounds[i].max_rank < rank) {
        sel.below_count += slices[i].count;
      }
    }
    result.selections.push_back(sel);
  }
  return result;
}

Result<WindowCutResult> WindowCut::SelectTwoSidedScan(
    const std::vector<SliceSynopsis>& slices, uint64_t global_size,
    uint64_t target_rank) {
  DEMA_RETURN_NOT_OK(ValidateInput(slices, global_size, target_rank));
  std::vector<RankBounds> bounds = ComputeRankBounds(slices);

  // Order by possible start position (Pos_start), then by end for the
  // mirrored scan (Pos_end).
  std::vector<size_t> by_start(slices.size()), by_end(slices.size());
  std::iota(by_start.begin(), by_start.end(), 0);
  by_end = by_start;
  std::sort(by_start.begin(), by_start.end(), [&](size_t a, size_t b) {
    return bounds[a].min_rank < bounds[b].min_rank;
  });
  std::sort(by_end.begin(), by_end.end(), [&](size_t a, size_t b) {
    return bounds[a].max_rank > bounds[b].max_rank;
  });

  std::vector<bool> is_candidate(slices.size(), false);
  // Lines 3-9: increasing Pos_start; stop after crossing the quantile
  // position — every later slice provably starts above the target rank.
  for (size_t i : by_start) {
    if (bounds[i].min_rank > target_rank) break;
    if (bounds[i].max_rank >= target_rank) is_candidate[i] = true;
  }
  // Lines 10-16: decreasing Pos_end; stop once slices provably end below the
  // target rank. (With sound rank intervals this mirrors the left scan; the
  // paper keeps both directions, and so do we.)
  for (size_t i : by_end) {
    if (bounds[i].max_rank < target_rank) break;
    if (bounds[i].min_rank <= target_rank) is_candidate[i] = true;
  }

  WindowCutResult result;
  result.classes = ClassifySlices(slices);
  RankSelection sel;
  sel.rank = target_rank;
  for (size_t i = 0; i < slices.size(); ++i) {
    if (is_candidate[i]) {
      result.candidates.push_back(i);
      result.candidate_event_count += slices[i].count;
    } else if (bounds[i].max_rank < target_rank) {
      sel.below_count += slices[i].count;
    }
  }
  result.selections.push_back(sel);
  return result;
}

Result<WindowCutResult> WindowCut::SelectNaiveOverlap(
    const std::vector<SliceSynopsis>& slices, uint64_t global_size,
    uint64_t target_rank) {
  DEMA_RETURN_NOT_OK(ValidateInput(slices, global_size, target_rank));

  // Order slices by first event; the pivot is the slice the target rank lands
  // in when counts are accumulated in that order (what a synopsis-less
  // implementation would guess).
  std::vector<size_t> order(slices.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return slices[a].first < slices[b].first;
  });
  uint64_t cum = 0;
  size_t pivot_pos = order.size();  // sentinel: no slice reached the rank
  for (size_t pos = 0; pos < order.size(); ++pos) {
    cum += slices[order[pos]].count;
    if (cum >= target_rank) {
      pivot_pos = pos;
      break;
    }
  }
  if (pivot_pos == order.size()) {
    // ValidateInput guarantees slice counts sum to global_size >= rank, so
    // the cumulative walk must land; anything else is corrupted synopses.
    return Status::Internal(
        "naive selection never reached target rank " +
        std::to_string(target_rank) + " (cumulative count " +
        std::to_string(cum) + ")");
  }

  // Transitive value-overlap closure around the pivot: grow left/right while
  // intervals intersect the current candidate hull. Slices sorted by `first`
  // are not sorted by `last`, so the left scan must consult the prefix
  // maximum of `last` — a wide covering slice far to the left can still
  // straddle the hull.
  std::vector<Event> prefix_max_last(order.size());
  prefix_max_last[0] = slices[order[0]].last;
  for (size_t pos = 1; pos < order.size(); ++pos) {
    prefix_max_last[pos] =
        std::max(prefix_max_last[pos - 1], slices[order[pos]].last);
  }
  Event hull_lo = slices[order[pivot_pos]].first;
  Event hull_hi = slices[order[pivot_pos]].last;
  size_t lo = pivot_pos, hi = pivot_pos;
  bool grew = true;
  while (grew) {
    grew = false;
    while (lo > 0 && !(prefix_max_last[lo - 1] < hull_lo)) {
      --lo;
      hull_lo = slices[order[lo]].first;  // sorted by first, so this extends left
      hull_hi = std::max(hull_hi, slices[order[lo]].last);
      grew = true;
    }
    while (hi + 1 < order.size() && !(hull_hi < slices[order[hi + 1]].first)) {
      ++hi;
      hull_hi = std::max(hull_hi, slices[order[hi]].last);
      grew = true;
    }
  }

  WindowCutResult result;
  result.classes = ClassifySlices(slices);
  std::vector<bool> is_candidate(slices.size(), false);
  for (size_t pos = lo; pos <= hi; ++pos) is_candidate[order[pos]] = true;

  // The closure is value-disjoint from everything outside it, so excluded
  // slices sit entirely below hull_lo or entirely above hull_hi; exactness
  // holds with the same below-count selection rule.
  RankSelection sel;
  sel.rank = target_rank;
  for (size_t i = 0; i < slices.size(); ++i) {
    if (is_candidate[i]) {
      result.candidates.push_back(i);
      result.candidate_event_count += slices[i].count;
    } else if (slices[i].last < hull_lo) {
      sel.below_count += slices[i].count;
    }
  }
  result.selections.push_back(sel);
  return result;
}

SliceClassCounts WindowCut::ClassifySlices(const std::vector<SliceSynopsis>& slices) {
  SliceClassCounts counts;
  size_t m = slices.size();
  if (m == 0) return counts;
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  // Sort by first ascending; ties by last descending so a covering slice
  // precedes the slices it covers.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (slices[a].first < slices[b].first) return true;
    if (slices[b].first < slices[a].first) return false;
    return slices[b].last < slices[a].last;
  });

  // Sweep: max `last` over already-seen slices covers the cover test; any
  // interval intersection that is not containment marks both ends compound.
  std::vector<bool> covered(m, false), overlapped(m, false);
  Event max_last = slices[order[0]].last;
  size_t max_last_idx = order[0];
  for (size_t pos = 1; pos < m; ++pos) {
    size_t i = order[pos];
    const SliceSynopsis& s = slices[i];
    if (!(max_last < s.last)) {
      covered[i] = true;  // some earlier slice spans [<= first, >= last]
    } else if (!(max_last < s.first)) {
      overlapped[i] = true;  // partial overlap with the running hull
      overlapped[max_last_idx] = true;
    }
    if (max_last < s.last) {
      max_last = s.last;
      max_last_idx = i;
    }
  }
  for (size_t i = 0; i < m; ++i) {
    if (covered[i]) {
      ++counts.cover;
    } else if (overlapped[i]) {
      ++counts.compound;
    } else {
      ++counts.separate;
    }
  }
  return counts;
}

}  // namespace dema::core
