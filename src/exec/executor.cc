#include "exec/executor.h"

#include <algorithm>

namespace dema::exec {

Executor::Executor(ExecutorOptions options)
    : options_(options), registry_(options.registry) {
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  c_submitted_ = registry_->GetCounter("exec.tasks_submitted");
  c_completed_ = registry_->GetCounter("exec.tasks_completed");
  c_queue_full_blocks_ = registry_->GetCounter("exec.queue_full_blocks");
  g_workers_ = registry_->GetGauge("exec.workers");
  g_queue_depth_ = registry_->GetGauge("exec.queue_depth");
  h_task_run_us_ = registry_->GetHistogram("exec.task_run_us");

  threads_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  g_workers_->Set(static_cast<int64_t>(threads_.size()));
}

Executor::~Executor() { Shutdown(); }

size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Executor::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_) {
      if (queue_.size() >= options_.queue_capacity) {
        c_queue_full_blocks_->Increment();
        not_full_.wait(lock, [this] {
          return shutdown_ || queue_.size() < options_.queue_capacity;
        });
      }
      if (!shutdown_) {
        queue_.push_back(std::move(task));
        c_submitted_->Increment();
        g_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
        lock.unlock();
        not_empty_.notify_one();
        return;
      }
    }
  }
  // Pool already stopped: run inline so the caller's future still resolves.
  c_submitted_->Increment();
  RunTask(std::move(task));
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain-before-exit: queued work still runs after Shutdown flips the
      // flag, so every already-accepted future resolves.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      g_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    not_full_.notify_one();
    RunTask(std::move(task));
  }
}

void Executor::RunTask(std::function<void()> task) {
  auto start = std::chrono::steady_clock::now();
  task();
  auto end = std::chrono::steady_clock::now();
  h_task_run_us_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count()));
  c_completed_->Increment();
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace dema::exec
