#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace dema::exec {

/// \brief Configuration of a worker-pool executor.
struct ExecutorOptions {
  /// Worker threads in the pool. Clamped to at least 1.
  size_t workers = 2;
  /// Bounded task-queue capacity: `Submit` blocks once this many tasks are
  /// queued, which backpressures producers instead of buffering unboundedly
  /// (an ingest thread that outruns the pool must slow down, not OOM).
  /// Clamped to at least 1.
  size_t queue_capacity = 256;
  /// Metrics sink for the `exec.*` instruments. When null, the executor owns
  /// a private registry (reachable via `registry()`). Must outlive the
  /// executor when provided.
  obs::Registry* registry = nullptr;
};

/// \brief Fixed-size worker pool with a bounded task queue and futures.
///
/// The data-plane offload point: local nodes submit the sort+slice of each
/// closed window here so the ingest thread never blocks on O(n log n) work.
/// `Submit` is thread-safe and returns a `std::future` for the task's result;
/// completion order is whatever the pool produces — callers that need ordered
/// effects sequence the futures themselves (see `DemaLocalNode`'s per-window
/// completion buffer).
///
/// Instruments (in the configured registry):
///   exec.workers            gauge     pool size
///   exec.queue_depth        gauge     tasks currently queued (not running)
///   exec.tasks_submitted    counter   tasks accepted by Submit
///   exec.tasks_completed    counter   tasks finished running
///   exec.queue_full_blocks  counter   Submit calls that had to wait for room
///   exec.task_run_us        histogram task execution time (not queue wait)
class Executor {
 public:
  explicit Executor(ExecutorOptions options = ExecutorOptions());
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Schedules \p fn on the pool and returns a future for its result. Blocks
  /// while the queue is full. After `Shutdown`, runs \p fn inline on the
  /// calling thread (the future is still valid), so late submitters degrade
  /// gracefully instead of deadlocking.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    // packaged_task is move-only but std::function requires copyable
    // callables; the shared_ptr wrapper bridges the two.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Drains every queued task, then stops and joins the workers. Idempotent;
  /// also called by the destructor.
  void Shutdown();

  /// Worker threads in the pool.
  size_t workers() const { return threads_.size(); }

  /// Tasks queued but not yet picked up by a worker.
  size_t queue_depth() const;

  /// The registry this executor records into (the options-provided one, or
  /// the executor's own private registry).
  obs::Registry* registry() const { return registry_; }

 private:
  /// Pushes one type-erased task, blocking while the queue is full; runs it
  /// inline when the pool is already shut down.
  void Enqueue(std::function<void()> task);
  void WorkerLoop();
  /// Runs one task, charging `exec.task_run_us` / `exec.tasks_completed`.
  void RunTask(std::function<void()> task);

  ExecutorOptions options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;

  /// Cached registry instruments.
  obs::Counter* c_submitted_;
  obs::Counter* c_completed_;
  obs::Counter* c_queue_full_blocks_;
  obs::Gauge* g_workers_;
  obs::Gauge* g_queue_depth_;
  obs::Histogram* h_task_run_us_;
};

}  // namespace dema::exec
