#include "net/channel.h"

#include <chrono>

namespace dema::net {

bool Channel::Push(Message m) {
  std::unique_lock<std::mutex> lock(mu_);
  if (capacity_ > 0) {
    cv_push_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
  }
  if (closed_) return false;
  counters_.messages += 1;
  counters_.bytes += m.WireBytes();
  counters_.events += m.event_count;
  queue_.push_back(std::move(m));
  cv_pop_.notify_one();
  return true;
}

bool Channel::TryPush(Message m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return false;
  if (capacity_ > 0 && queue_.size() >= capacity_) return false;
  counters_.messages += 1;
  counters_.bytes += m.WireBytes();
  counters_.events += m.event_count;
  queue_.push_back(std::move(m));
  cv_pop_.notify_one();
  return true;
}

Channel::PushResult Channel::PushFor(Message* m, DurationUs timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (capacity_ > 0) {
    cv_push_.wait_for(lock, std::chrono::microseconds(timeout_us),
                      [&] { return closed_ || queue_.size() < capacity_; });
  }
  if (closed_) return PushResult::kClosed;
  if (capacity_ > 0 && queue_.size() >= capacity_) return PushResult::kFull;
  counters_.messages += 1;
  counters_.bytes += m->WireBytes();
  counters_.events += m->event_count;
  queue_.push_back(std::move(*m));
  cv_pop_.notify_one();
  return PushResult::kPushed;
}

std::optional<Message> Channel::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_pop_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message m = std::move(queue_.front());
  queue_.pop_front();
  cv_push_.notify_one();
  return m;
}

std::optional<Message> Channel::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  cv_push_.notify_one();
  return m;
}

std::optional<Message> Channel::PopFor(DurationUs timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  bool ready = cv_pop_.wait_for(lock, std::chrono::microseconds(timeout_us),
                                [&] { return closed_ || !queue_.empty(); });
  if (!ready || queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  cv_push_.notify_one();
  return m;
}

void Channel::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_pop_.notify_all();
  cv_push_.notify_all();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t Channel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

TrafficCounters Channel::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace dema::net
