#include "net/dedup.h"

namespace dema::net {

bool SeqDedup::IsDuplicate(NodeId src, uint32_t seq) {
  if (seq == 0) return false;
  SrcState& state = per_src_[src];
  if (!state.seen.insert(seq).second) {
    ++duplicates_seen_;
    return true;
  }
  if (state.seen.size() == 1 || SeqNewer(seq, state.max_seq)) {
    state.max_seq = seq;
    // Unsigned subtraction wraps with the sequence space, so the horizon and
    // the serial comparison below stay correct across the 2^32 boundary.
    const uint32_t horizon = state.max_seq - window_;
    std::erase_if(state.seen,
                  [horizon](uint32_t s) { return SeqNewer(horizon, s); });
  }
  return false;
}

}  // namespace dema::net
