#include "net/dedup.h"

namespace dema::net {

bool SeqDedup::IsDuplicate(NodeId src, uint32_t seq) {
  if (seq == 0) return false;
  SrcState& state = per_src_[src];
  if (!state.seen.insert(seq).second) {
    ++duplicates_seen_;
    return true;
  }
  if (seq > state.max_seq) {
    state.max_seq = seq;
    if (state.max_seq > window_) {
      const uint32_t horizon = state.max_seq - window_;
      std::erase_if(state.seen, [horizon](uint32_t s) { return s < horizon; });
    }
  }
  return false;
}

}  // namespace dema::net
