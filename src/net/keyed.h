#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/message.h"
#include "net/serializer.h"

namespace dema::net {

/// Identifies one tenant key (user, sensor, metric, ...) in a multi-tenant
/// keyed run. Keys are dense: a run with K keys uses ids 0..K-1.
using KeyId = uint64_t;

/// \brief One per-key payload inside a `KeyedBatch`.
///
/// `payload` is the serialized single-key protocol message (kSynopsisBatch,
/// kCandidateRequest, kCandidateReply, or kGammaUpdate — whichever the outer
/// frame's type maps to via `KeyedInnerType`), byte-identical to what an
/// unsharded run would put on the wire for that key.
struct KeyedEntry {
  KeyId key = 0;
  std::vector<uint8_t> payload;
};

/// \brief Envelope batching per-key protocol traffic between a keyed local
/// node and one root shard.
///
/// All synopsis/candidate/gamma traffic of a (local, shard) pair for one
/// protocol step travels as a single frame: one CRC-protected envelope, one
/// sequence number, one entry per key. The inner payloads reuse the
/// single-key wire formats unchanged, so per-shard validation and quarantine
/// run exactly the PR 5 code path on each entry.
struct KeyedBatch {
  /// Shard index the entries belong to (every entry's key must map to it).
  uint32_t shard = 0;
  std::vector<KeyedEntry> entries;
  /// Raw events carried across all entries (envelope metadata, not wire
  /// bytes; candidate-reply batches report their merged run sizes here).
  uint64_t event_count = 0;

  void SerializeTo(Writer* w) const;
  static Result<KeyedBatch> Deserialize(Reader* r);
  uint64_t WireEventCount() const { return event_count; }

  /// Reads just the shard index from a serialized payload (routing fast
  /// path: the service picks the strand before decoding entries).
  static Result<uint32_t> PeekShard(ByteSpan payload);
};

/// Byte offset of the first entry's inner payload inside a serialized
/// `KeyedBatch` (shard u32 + count u32 + key u64 + length u32). The fabric's
/// tamper injector uses it to corrupt exactly one key's traffic while the
/// frame checksum stays valid.
inline constexpr size_t kKeyedFirstPayloadOffset =
    sizeof(uint32_t) + sizeof(uint32_t) + sizeof(KeyId) + sizeof(uint32_t);

/// The single-key message type carried by a keyed envelope of type \p outer,
/// or an error for non-keyed types.
Result<MessageType> KeyedInnerType(MessageType outer);

/// The keyed envelope type that batches inner messages of type \p inner, or
/// an error for types that are never batched.
Result<MessageType> KeyedOuterType(MessageType inner);

/// \brief Query payload: multi-key, multi-quantile lookup against the shard
/// service's live result store.
struct KeyedQuery {
  /// Client-chosen correlation id, echoed in the reply.
  uint64_t query_id = 0;
  /// Keys to answer (any order, duplicates allowed).
  std::vector<KeyId> keys;
  /// Quantiles to return per key; must be a subset of the quantile set the
  /// service computes (it holds exact answers only for those). Empty = all
  /// configured quantiles.
  std::vector<double> quantiles;

  void SerializeTo(Writer* w) const;
  static Result<KeyedQuery> Deserialize(Reader* r);
};

/// \brief One key's answer inside a `KeyedQueryReply`.
struct KeyedAnswer {
  KeyId key = 0;
  /// False when the key has not emitted any window yet (remaining fields
  /// are zero). Unknown keys fail the whole query instead.
  bool found = false;
  /// Window the values belong to (the key's latest published window).
  WindowId window_id = 0;
  uint64_t global_size = 0;
  bool degraded = false;
  uint64_t rank_error_bound = 0;
  /// Values parallel to the query's (resolved) quantile list.
  std::vector<double> values;
};

/// \brief Reply payload: per-key answers, read shard-atomically (all keys of
/// one shard are answered from a single locked snapshot of that shard's
/// store stripe).
struct KeyedQueryReply {
  uint64_t query_id = 0;
  /// Empty on success; a human-readable rejection otherwise (unknown key,
  /// unconfigured quantile) with every `answers` entry absent.
  std::string error;
  /// Quantiles the values are reported for (the resolved subset).
  std::vector<double> quantiles;
  std::vector<KeyedAnswer> answers;

  void SerializeTo(Writer* w) const;
  static Result<KeyedQueryReply> Deserialize(Reader* r);
};

}  // namespace dema::net
