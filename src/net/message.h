#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "net/codec.h"
#include "net/serializer.h"

namespace dema::net {

/// Identifies a global/local window instance; windows of the same lifespan
/// share ids across nodes (id = window start time / window length).
using WindowId = uint64_t;

/// \brief Wire type tag of a message payload.
///
/// Dema-specific payloads (synopses, candidate protocol, gamma updates) are
/// declared in `dema/protocol.h`; they reuse this enum so the envelope stays
/// uniform across systems.
enum class MessageType : uint16_t {
  /// Batch of raw (optionally pre-sorted) events for one window.
  kEventBatch = 1,
  /// End-of-window marker from a local node (window id + event count).
  kWindowEnd = 2,
  /// Batch of Dema slice synopses for one window.
  kSynopsisBatch = 3,
  /// Root -> local request for the events of specific slices.
  kCandidateRequest = 4,
  /// Local -> root reply carrying candidate slice events.
  kCandidateReply = 5,
  /// Root -> local broadcast of a new slice factor gamma.
  kGammaUpdate = 6,
  /// Final aggregation result emitted by the root (for sinks / tests).
  kResult = 7,
  /// Serialized t-digest summary for one window (decentralized sketch mode).
  kSketchSummary = 8,
  /// Control: orderly shutdown of a node's run loop.
  kShutdown = 9,
  /// Data-stream node -> local node: event time has advanced to this instant
  /// (all of the sender's events up to it were shipped). The edge node's
  /// watermark is the minimum across its stream nodes.
  kTimeAdvance = 10,
  /// Local -> root request to re-learn the current slice factor after a
  /// restart (the root answers with a kGammaUpdate).
  kGammaSyncRequest = 11,
  /// Keyed local -> shard service: one frame batching the per-key
  /// kSynopsisBatch payloads of every key a (local, shard) pair closed for a
  /// window boundary (`net::KeyedBatch` envelope; see docs/SHARDING.md).
  kShardSynopsisBatch = 12,
  /// Shard service -> keyed local: batched per-key kCandidateRequest
  /// payloads (including empty release requests).
  kShardCandidateRequest = 13,
  /// Keyed local -> shard service: batched per-key kCandidateReply payloads.
  kShardCandidateReply = 14,
  /// Shard service -> keyed local: batched per-key kGammaUpdate payloads.
  kShardGammaUpdate = 15,
  /// Query client -> shard service: multi-key, multi-quantile snapshot query
  /// over the live result store (`net::KeyedQuery`).
  kShardQuery = 16,
  /// Shard service -> query client: per-key answers (`net::KeyedQueryReply`).
  kShardQueryReply = 17,
  /// Transport-internal liveness probe/echo (`net::Heartbeat`). Never enters
  /// node inboxes or the simulated fabric; excluded from link-traffic
  /// accounting so byte parity with the fabric stays exact.
  kHeartbeat = 18,
  /// Transport-internal cumulative delivery acknowledgement
  /// (`net::CumulativeAck`): the receive side's highest-contiguous sequence
  /// number per (src, dst) stream, freeing the sender's retained frames.
  /// Transport control, same accounting exclusion as `kHeartbeat`.
  kAck = 19,
};

/// \brief Returns a readable name for a message type, e.g. "EventBatch".
const char* MessageTypeToString(MessageType type);

/// Fixed per-message envelope overhead charged to the wire: an 18-byte
/// header (type + src + dst + sequence number + payload length) plus a
/// 4-byte CRC32C trailer covering header and payload, mirroring a small
/// framed TCP protocol (see `docs/PROTOCOL.md`, protocol version 3).
inline constexpr uint64_t kEnvelopeWireBytes =
    sizeof(uint16_t) + 2 * sizeof(NodeId) + 2 * sizeof(uint32_t) +
    /*crc32c trailer*/ sizeof(uint32_t);

/// \brief A framed message travelling between nodes.
///
/// The payload is already serialized; `WireBytes()` is the exact number of
/// bytes the link metrics charge for the transfer.
struct Message {
  MessageType type = MessageType::kShutdown;
  NodeId src = 0;
  NodeId dst = 0;
  /// Per-(src, dst) sequence number stamped by the transport, 1-based and
  /// monotonic per sender stream; 0 marks an unsequenced message. Receivers
  /// drop (src, seq) pairs they have already seen (`SeqDedup`) so
  /// at-least-once delivery stays exactly-once at the node logic.
  uint32_t seq = 0;
  /// Owned payload bytes (the send path and the in-process fabric). Empty
  /// when the message carries a borrowed view instead — read through
  /// `payload_bytes()`/`payload_data()`/`payload_size()`, which cover both.
  std::vector<uint8_t> payload;
  /// Processing-time instant the message was handed to the network (set by
  /// `Network::Send`; used for queueing statistics).
  TimestampUs send_time_us = 0;
  /// Raw events carried in the payload (metadata only, not on the wire);
  /// feeds the paper's event-count network-cost metric.
  uint64_t event_count = 0;

  /// Zero-copy receive path: the payload bytes live inside a shared arena
  /// block (one socket read holds many frames) instead of a per-message
  /// vector. `backing` pins the block alive for as long as any message views
  /// into it; decoders parse straight from the socket buffer, copy-free.
  /// Only `SetPayloadView` writes these.
  std::shared_ptr<const void> backing;

  /// Attaches a borrowed payload. \p owner must keep \p data alive.
  void SetPayloadView(std::shared_ptr<const void> owner, const uint8_t* data,
                      size_t size) {
    payload.clear();
    backing = std::move(owner);
    view_data_ = data;
    view_size_ = size;
  }

  /// The payload bytes, wherever they live (owned vector or arena view).
  ByteSpan payload_bytes() const { return {payload_data(), payload_size()}; }
  const uint8_t* payload_data() const {
    return backing ? view_data_ : payload.data();
  }
  size_t payload_size() const { return backing ? view_size_ : payload.size(); }

  /// Moves the payload out as an owned vector, copying once if it was a
  /// borrowed view (re-framing paths that ship the bytes onward need
  /// ownership; everything else should stay on `payload_bytes()`).
  std::vector<uint8_t> TakePayload() {
    if (!backing) return std::move(payload);
    std::vector<uint8_t> owned(view_data_, view_data_ + view_size_);
    backing.reset();
    view_data_ = nullptr;
    view_size_ = 0;
    return owned;
  }

  /// Materializes a borrowed view into the owned vector (mutation paths —
  /// e.g. the fabric's tamper injector — must not write into a shared arena
  /// block other messages still view). No-op for owned payloads.
  void EnsureOwnedPayload() {
    if (!backing) return;
    payload = TakePayload();
  }

  /// Total bytes on the wire: envelope + payload.
  uint64_t WireBytes() const { return kEnvelopeWireBytes + payload_size(); }

 private:
  const uint8_t* view_data_ = nullptr;
  size_t view_size_ = 0;
};

/// \brief Payload: a batch of events belonging to one window.
///
/// Used by the centralized baseline (all events to root), the Desis baseline
/// (sorted runs to root), and Dema's calculation step (candidate events).
struct EventBatch {
  WindowId window_id = 0;
  /// True when the events are sorted by the global event order.
  bool sorted = false;
  /// True when this is the final batch for (src, window_id).
  bool last_batch = false;
  /// Wire encoding for the event payload (serialize-side choice; the decoder
  /// reads whatever tag the stream carries).
  EventCodec codec = EventCodec::kFixed;
  std::vector<Event> events;

  /// Serializes this payload into \p w.
  void SerializeTo(Writer* w) const;
  /// Parses a payload from \p r.
  static Result<EventBatch> Deserialize(Reader* r);
  /// Raw events carried (for the envelope's event-count metadata).
  uint64_t WireEventCount() const { return events.size(); }

  /// Fast path for consumers that only need the measurement values (e.g. the
  /// sketch root): streams `fn(double value)` per event without
  /// materializing `Event` objects. Works for both wire codecs; the fixed
  /// codec uses a validated raw stride. Returns the number of events.
  template <typename Fn>
  static Result<uint64_t> ForEachValue(ByteSpan payload, Fn&& fn) {
    Reader r(payload);
    uint64_t window_id = 0;
    uint8_t sorted = 0, last = 0;
    DEMA_RETURN_NOT_OK(r.GetU64(&window_id));
    DEMA_RETURN_NOT_OK(r.GetU8(&sorted));
    DEMA_RETURN_NOT_OK(r.GetU8(&last));
    uint64_t count = 0;
    DEMA_RETURN_NOT_OK(ForEachEncodedValue(&r, std::forward<Fn>(fn), &count));
    return count;
  }

  /// Reads just the window id from a serialized payload (fast-path helper).
  static Result<WindowId> PeekWindowId(ByteSpan payload);
};

/// \brief Payload: end-of-window marker carrying the local window size.
///
/// Lets the root learn each local window's event count even when events were
/// streamed in multiple batches.
struct WindowEnd {
  WindowId window_id = 0;
  uint64_t local_window_size = 0;
  /// Processing-time instant the local window closed (latency metric input).
  TimestampUs close_time_us = 0;

  void SerializeTo(Writer* w) const;
  static Result<WindowEnd> Deserialize(Reader* r);
};

/// \brief Payload: transport-level liveness probe (`kHeartbeat`).
///
/// A ping carries the sender's monotonic send instant; the peer echoes it
/// back unchanged in a pong, so the pinger reads its per-peer RTT without
/// either side sharing a clock. Heartbeats are connection-scoped control
/// traffic: they are unsequenced (seq 0), never reach an inbox, and are
/// excluded from the link-traffic instruments.
struct Heartbeat {
  enum class Kind : uint8_t { kPing = 0, kPong = 1 };
  Kind kind = Kind::kPing;
  /// Pinger's monotonic clock at send time, echoed verbatim by the pong.
  TimestampUs probe_time_us = 0;

  void SerializeTo(Writer* w) const;
  static Result<Heartbeat> Deserialize(Reader* r);
};

/// \brief Payload: cumulative per-stream delivery acknowledgement (`kAck`).
///
/// Each entry acknowledges one (src, dst) sequence stream: every frame with
/// a serial number <= `cum_seq` (RFC 1982 comparison, within the epoch the
/// number's top byte names) has been received. Receivers coalesce all
/// streams that progressed during a read pass into one frame; senders drop
/// the acked prefix of their retained-frame window.
struct CumulativeAck {
  struct Entry {
    NodeId src = 0;
    NodeId dst = 0;
    /// Highest contiguously received sequence number of the stream.
    uint32_t cum_seq = 0;
  };
  std::vector<Entry> entries;

  void SerializeTo(Writer* w) const;
  static Result<CumulativeAck> Deserialize(Reader* r);
};

/// \brief Payload: a data-stream node's event-time progress marker.
struct TimeAdvance {
  /// All events with timestamp < watermark_us were shipped by the sender.
  TimestampUs watermark_us = 0;
  /// True on the sender's final marker (end of stream).
  bool final_marker = false;

  void SerializeTo(Writer* w) const;
  static Result<TimeAdvance> Deserialize(Reader* r);
};

/// Detects payloads that report a raw-event count for the cost metric.
template <typename P>
concept HasWireEventCount = requires(const P& p) {
  { p.WireEventCount() } -> std::convertible_to<uint64_t>;
};

/// \brief Convenience: frames \p payload-serializing function output into a
/// message of the given type.
template <typename Payload>
Message MakeMessage(MessageType type, NodeId src, NodeId dst, const Payload& p) {
  Writer w;
  p.SerializeTo(&w);
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.payload = w.TakeBuffer();
  if constexpr (HasWireEventCount<Payload>) {
    m.event_count = p.WireEventCount();
  }
  return m;
}

}  // namespace dema::net
