#include "net/network.h"

#include "common/crc32c.h"
#include "net/keyed.h"
#include "net/serializer.h"

namespace dema::net {

Network::Network(const Clock* clock) : Network(clock, Options()) {}

Network::Network(const Clock* clock, Options options)
    : clock_(clock),
      options_(options),
      owned_registry_(options.registry == nullptr ? new obs::Registry() : nullptr),
      registry_(options.registry == nullptr ? owned_registry_.get()
                                            : options.registry),
      sent_(registry_, "transport.sent"),
      dup_sent_(registry_, "net.duplicates"),
      c_dropped_(registry_->GetCounter("net.dropped")),
      c_delayed_(registry_->GetCounter("net.delayed")),
      c_corrupted_(registry_->GetCounter("net.corrupted")),
      c_corrupted_frame_(registry_->GetCounter("net.corrupted{layer=frame}")),
      c_corrupted_payload_(
          registry_->GetCounter("net.corrupted{layer=payload}")),
      c_sim_ticks_(registry_->GetCounter("sim.ticks")),
      c_sim_events_(registry_->GetCounter("sim.events")),
      fault_rng_(options.fault_seed) {}

Status Network::RegisterNode(NodeId id) {
  return RegisterNode(id, options_.inbox_capacity);
}

Status Network::RegisterNode(NodeId id, size_t inbox_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      inboxes_.emplace(id, std::make_unique<Channel>(inbox_capacity));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already registered");
  }
  order_.push_back(id);
  return Status::OK();
}

Status Network::UnregisterNode(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  if (it == inboxes_.end()) {
    return Status::NotFound("node " + std::to_string(id) + " not registered");
  }
  it->second->Close();
  inboxes_.erase(it);
  for (auto oit = order_.begin(); oit != order_.end(); ++oit) {
    if (*oit == id) {
      order_.erase(oit);
      break;
    }
  }
  return Status::OK();
}

Channel* Network::Inbox(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  return it == inboxes_.end() ? nullptr : it->second.get();
}

void Network::ChargeLocked(const Message& m) {
  sent_.Charge(m.src, m.dst, m.type, m.WireBytes(), m.event_count);
  transfer_us_[MakeKey(m.src, m.dst)] +=
      options_.link_model.TransferTimeUs(m.WireBytes());
}

void Network::CountDropLocked(const char* cause) {
  ++messages_dropped_;
  c_dropped_->Increment();
  registry_->GetCounter(std::string("net.dropped{cause=") + cause + "}")
      ->Increment();
}

bool Network::CorruptFrameLocked(Message* m) {
  // The injectors mutate payload bytes in place; a borrowed arena view may
  // be shared with other in-flight messages, so force ownership first.
  m->EnsureOwnedPayload();
  // Reconstruct the bytes a framing sender would have written (the TCP
  // transport's header layout) and the CRC it would have framed, so the
  // drop decision below is a real checksum verification, not an assumption.
  Writer w;
  w.PutU16(static_cast<uint16_t>(m->type));
  w.PutU32(m->src);
  w.PutU32(m->dst);
  w.PutU32(m->seq);
  w.PutU32(static_cast<uint32_t>(m->payload.size()));
  std::vector<uint8_t> header = w.TakeBuffer();
  const uint32_t framed_crc =
      ExtendCrc32c(ExtendCrc32c(0, header.data(), header.size()),
                   m->payload.data(), m->payload.size());

  // Flip one random byte anywhere in the frame: header, payload, or the
  // 4-byte trailer itself.
  const size_t frame_size =
      header.size() + m->payload.size() + sizeof(uint32_t);
  const size_t at = static_cast<size_t>(
      fault_rng_.UniformInt(0, static_cast<int64_t>(frame_size - 1)));
  const uint8_t mask = static_cast<uint8_t>(fault_rng_.UniformInt(1, 255));
  uint32_t trailer_crc = framed_crc;
  if (at < header.size()) {
    header[at] ^= mask;
  } else if (at < header.size() + m->payload.size()) {
    m->payload[at - header.size()] ^= mask;
  } else {
    trailer_crc ^= static_cast<uint32_t>(mask)
                   << (8 * (at - header.size() - m->payload.size()));
  }
  const uint32_t recomputed =
      ExtendCrc32c(ExtendCrc32c(0, header.data(), header.size()),
                   m->payload.data(), m->payload.size());
  if (recomputed != trailer_crc) {
    ++messages_corrupted_;
    c_corrupted_->Increment();
    c_corrupted_frame_->Increment();
    return true;  // receiver detects the flip and drops the frame
  }
  return false;  // unreachable for single-byte flips (CRC32C property)
}

void Network::MaybeTamperLocked(Message* m) {
  if (tampering_.empty() || !tampering_.count(m->src)) return;
  // A tampering local corrupts its own protocol reports; both payloads
  // carry the declared node id at offset 8 (after the u64 window id). Keyed
  // envelopes are tampered in their first entry's inner payload — exactly
  // one key's traffic — at the same inner offset, so per-shard validation
  // catches it entry-locally.
  size_t base = 0;
  if (m->type == MessageType::kShardSynopsisBatch ||
      m->type == MessageType::kShardCandidateReply) {
    base = kKeyedFirstPayloadOffset;
  } else if (m->type != MessageType::kSynopsisBatch &&
             m->type != MessageType::kCandidateReply) {
    return;
  }
  const size_t kNodeFieldOffset = base + sizeof(uint64_t);
  if (m->payload_size() < kNodeFieldOffset + sizeof(uint32_t)) return;
  if (options_.tamper_prob < 1.0 &&
      !fault_rng_.Bernoulli(options_.tamper_prob)) {
    return;
  }
  // Flip a bit of the declared node id. The message re-frames with a valid
  // CRC (the "sender" computes it over the tampered bytes), so nothing below
  // the root's validation pass can tell it apart from an honest message.
  m->EnsureOwnedPayload();
  m->payload[kNodeFieldOffset] ^= 0x01;
  ++messages_corrupted_;
  c_corrupted_->Increment();
  c_corrupted_payload_->Increment();
}

std::vector<std::pair<Channel*, Message>> Network::CollectDueLocked(
    uint64_t horizon) {
  std::vector<std::pair<Channel*, Message>> out;
  while (!delayed_.empty() && delayed_.begin()->first <= horizon) {
    Message held = std::move(delayed_.begin()->second);
    delayed_.erase(delayed_.begin());
    // The link may have gone down while the message was in flight.
    if (down_.count(held.src) || down_.count(held.dst)) {
      CountDropLocked("node_down");
      continue;
    }
    if (partitions_.count(MakeKey(held.src, held.dst))) {
      CountDropLocked("partition");
      continue;
    }
    auto it = inboxes_.find(held.dst);
    if (it == inboxes_.end()) {
      // The destination was unregistered while the message was in flight: it
      // can never be delivered, which is a drop, not a silent vanish.
      CountDropLocked("unknown_dest");
      continue;
    }
    out.emplace_back(it->second.get(), std::move(held));
  }
  return out;
}

Status Network::Send(Message m) {
  // One stamping point for every path — inline, delayed, duplicated, or
  // event-queued — so latency accounting is consistent across them.
  m.send_time_us = clock_->NowUs();
  const bool event_mode = options_.delivery == DeliveryMode::kEvent;
  Channel* inbox = nullptr;
  bool duplicate = false;
  bool delayed = false;
  bool dropped = false;
  std::vector<std::pair<Channel*, Message>> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(m.dst);
    if (it == inboxes_.end()) {
      return Status::NotFound("unknown destination node " + std::to_string(m.dst));
    }
    inbox = it->second.get();
    m.seq = ++next_seq_[MakeKey(m.src, m.dst)];
    if (!event_mode) {
      // Inline mode's virtual clock ticks once per send; in event mode it
      // follows the tick queue instead (sends between ticks are concurrent).
      virtual_now_us_ +=
          std::max<uint64_t>(1, options_.link_model.base_latency_us);
    }
    // A tampering sender corrupts its payload before the message ever
    // reaches the wire; the frame (and its checksum) is built over the
    // already-tampered bytes, so the loss/corruption pipeline below treats
    // it like any honest message.
    MaybeTamperLocked(&m);
    // Fault pipeline. Dropped messages return OK: a lost datagram looks like
    // a successful send. Loss is charged to the wire (the message travelled
    // before it was lost); partition/node-down drops never leave the sender.
    // The draw order is identical in both delivery modes, so a fault seed
    // replays the same schedule whether delivery is inline or event-driven.
    if (down_.count(m.src) || down_.count(m.dst)) {
      CountDropLocked("node_down");
      dropped = true;
    } else if (partitions_.count(MakeKey(m.src, m.dst))) {
      CountDropLocked("partition");
      dropped = true;
    } else if (options_.drop_prob > 0 &&
               fault_rng_.Bernoulli(options_.drop_prob)) {
      ChargeLocked(m);
      CountDropLocked("loss");
      dropped = true;
    } else if (options_.corrupt_prob > 0 &&
               fault_rng_.Bernoulli(options_.corrupt_prob) &&
               CorruptFrameLocked(&m)) {
      // Wire-level byte flip caught by the frame checksum: the receiver
      // drops the frame, so from the protocol's view this is loss — the
      // deadline/retry machinery recovers it like any other drop.
      ChargeLocked(m);
      CountDropLocked("corrupt");
      dropped = true;
    } else {
      ChargeLocked(m);
      if (options_.duplicate_prob > 0 &&
          fault_rng_.Bernoulli(options_.duplicate_prob)) {
        // Retransmission: the wire carries the message again.
        ChargeLocked(m);
        dup_sent_.Charge(m.src, m.dst, m.type, m.WireBytes(), m.event_count);
        ++duplicates_injected_;
        duplicate = true;
      }
      uint64_t extra = 0;
      if (options_.delay_us_max > 0 &&
          fault_rng_.Bernoulli(options_.delay_prob)) {
        // Hold the original back; an immediate duplicate (if any) overtakes
        // it, which is exactly the reorder at-least-once transports exhibit.
        extra = static_cast<uint64_t>(fault_rng_.UniformInt(
            1, static_cast<int64_t>(options_.delay_us_max)));
        ++messages_delayed_;
        c_delayed_->Increment();
        delayed = true;
      }
      if (event_mode) {
        // The duplicate ships undelayed, so it overtakes a delayed original
        // on the queue; with equal due times FIFO keeps it first, matching
        // inline-mode delivery order.
        if (duplicate) EnqueueEventLocked(m, 0);
        EnqueueEventLocked(std::move(m), extra);
      } else if (delayed) {
        delayed_.emplace(virtual_now_us_ + extra, m);
      }
    }
    if (!event_mode) due = CollectDueLocked(virtual_now_us_);
  }
  if (event_mode) return Status::OK();
  // Push outside the lock: a full inbox must not block unrelated senders. A
  // closed inbox fails only its own delivery — the rest of the due batch
  // still reaches its healthy destinations before the error is reported.
  Status push_error = Status::OK();
  auto push = [&push_error](Channel* ch, Message&& msg) {
    if (!ch->Push(std::move(msg)) && push_error.ok()) {
      push_error = Status::NetworkError("inbox of node closed");
    }
  };
  for (auto& [ch, held] : due) push(ch, std::move(held));
  if (duplicate) {
    Message copy = m;
    push(inbox, std::move(copy));
  }
  if (!dropped && !delayed) push(inbox, std::move(m));
  return push_error;
}

void Network::Partition(NodeId src, NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.insert(MakeKey(src, dst));
}

void Network::Heal(NodeId src, NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase(MakeKey(src, dst));
}

void Network::SetNodeDown(NodeId id, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down) {
    down_.insert(id);
  } else {
    down_.erase(id);
  }
}

void Network::SetNodeTamper(NodeId id, bool tampering) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tampering) {
    tampering_.insert(id);
  } else {
    tampering_.erase(id);
  }
}

uint64_t Network::messages_corrupted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_corrupted_;
}

void Network::EnqueueEventLocked(Message m, uint64_t extra_delay_us) {
  HopEvent ev;
  // An injected delay is queueing before the first hop starts, not wire time.
  ev.hop_start_us = virtual_now_us_ + extra_delay_us;
  uint64_t first_hop_us = 0;
  if (options_.topology != nullptr) {
    Status st = options_.topology->Route(m.src, m.dst, &ev.path);
    if (!st.ok() || ev.path.empty()) {
      // A registered node outside the topology's endpoint range has no
      // route; the message can never arrive anywhere.
      CountDropLocked("no_route");
      return;
    }
    first_hop_us =
        options_.topology->link(ev.path[0]).spec.TransferTimeUs(m.WireBytes());
  } else {
    double us = options_.link_model.TransferTimeUs(m.WireBytes());
    first_hop_us = us < 1.0 ? 1 : static_cast<uint64_t>(us);
  }
  ev.msg = std::move(m);
  events_.Push(ev.hop_start_us + first_hop_us, std::move(ev));
}

obs::Histogram* Network::HopHistogramLocked(tick::LinkTier tier) {
  obs::Histogram*& slot = hop_latency_[static_cast<size_t>(tier)];
  if (slot == nullptr) {
    slot = registry_->GetHistogram(std::string("sim.hop_latency_us{tier=") +
                                   tick::LinkTierName(tier) + "}");
  }
  return slot;
}

uint64_t Network::AdvanceEvents() {
  std::vector<std::pair<Channel*, Message>> deliver;
  uint64_t processed = 0;
  uint64_t closed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.empty()) return 0;
    const uint64_t now = events_.NextDue();
    if (now > virtual_now_us_) virtual_now_us_ = now;
    c_sim_ticks_->Increment();
    while (!events_.empty() && events_.NextDue() == now) {
      HopEvent ev = events_.Pop();
      ++processed;
      c_sim_events_->Increment();
      if (!ev.path.empty()) {
        const tick::Link& crossed =
            options_.topology->link(ev.path[ev.next_hop]);
        HopHistogramLocked(crossed.tier)->Record(now - ev.hop_start_us);
        if (ev.next_hop + 1 < ev.path.size()) {
          // Switch hop: forward on the next link. Transfer times are >= 1us,
          // so the re-enqueued event lands strictly after this tick and the
          // batch loop terminates.
          ++ev.next_hop;
          ev.hop_start_us = now;
          uint64_t t = options_.topology->link(ev.path[ev.next_hop])
                           .spec.TransferTimeUs(ev.msg.WireBytes());
          events_.Push(now + t, std::move(ev));
          continue;
        }
      }
      // Final hop: the *delivery-time* fault state decides, exactly like the
      // inline path's delayed-redelivery checks.
      Message& m = ev.msg;
      if (down_.count(m.src) || down_.count(m.dst)) {
        CountDropLocked("node_down");
        continue;
      }
      if (partitions_.count(MakeKey(m.src, m.dst))) {
        CountDropLocked("partition");
        continue;
      }
      auto it = inboxes_.find(m.dst);
      if (it == inboxes_.end()) {
        CountDropLocked("unknown_dest");
        continue;
      }
      deliver.emplace_back(it->second.get(), std::move(m));
    }
  }
  // Push outside the lock, mirroring the inline path.
  for (auto& [ch, msg] : deliver) {
    if (!ch->Push(std::move(msg))) ++closed;
  }
  if (closed > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t i = 0; i < closed; ++i) CountDropLocked("closed_inbox");
  }
  return processed;
}

size_t Network::pending_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t Network::virtual_now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_us_;
}

uint64_t Network::event_queue_peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.peak_size();
}

uint64_t Network::FlushDelayed() {
  std::vector<std::pair<Channel*, Message>> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    due = CollectDueLocked(UINT64_MAX);
  }
  uint64_t delivered = 0;
  for (auto& [ch, held] : due) {
    if (ch->Push(std::move(held))) ++delivered;
  }
  return delivered;
}

uint64_t Network::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_dropped_;
}

uint64_t Network::messages_delayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_delayed_;
}

size_t Network::delayed_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delayed_.size();
}

uint64_t Network::duplicates_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_injected_;
}

Network::LinkStats Network::GetLinkStats(NodeId src, NodeId dst) const {
  auto links = sent_.Links();
  auto it = links.find(MakeKey(src, dst));
  LinkStats out;
  if (it != links.end()) out.counters = it->second;
  std::lock_guard<std::mutex> lock(mu_);
  auto tit = transfer_us_.find(MakeKey(src, dst));
  if (tit != transfer_us_.end()) out.simulated_transfer_us = tit->second;
  return out;
}

std::map<std::pair<NodeId, NodeId>, Network::LinkStats> Network::AllLinks() const {
  std::map<std::pair<NodeId, NodeId>, LinkStats> out;
  for (const auto& [key, counters] : sent_.Links()) out[key].counters = counters;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, us] : transfer_us_) out[key].simulated_transfer_us = us;
  return out;
}

transport::LinkTrafficMap Network::LinkTraffic() const { return sent_.Links(); }

Network::LinkStats Network::TotalStats() const {
  LinkStats total;
  for (const auto& [key, stats] : AllLinks()) {
    (void)key;
    total.counters += stats.counters;
    total.simulated_transfer_us += stats.simulated_transfer_us;
  }
  return total;
}

std::map<MessageType, TrafficCounters> Network::StatsByType() const {
  return sent_.ByType();
}

void Network::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    inbox->Close();
  }
}

std::vector<NodeId> Network::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

}  // namespace dema::net
