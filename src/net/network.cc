#include "net/network.h"

namespace dema::net {

Network::Network(const Clock* clock) : Network(clock, Options()) {}

Network::Network(const Clock* clock, Options options)
    : clock_(clock),
      options_(options),
      owned_registry_(options.registry == nullptr ? new obs::Registry() : nullptr),
      registry_(options.registry == nullptr ? owned_registry_.get()
                                            : options.registry),
      sent_(registry_, "transport.sent"),
      fault_rng_(options.fault_seed) {}

Status Network::RegisterNode(NodeId id) {
  return RegisterNode(id, options_.inbox_capacity);
}

Status Network::RegisterNode(NodeId id, size_t inbox_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      inboxes_.emplace(id, std::make_unique<Channel>(inbox_capacity));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already registered");
  }
  order_.push_back(id);
  return Status::OK();
}

Channel* Network::Inbox(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  return it == inboxes_.end() ? nullptr : it->second.get();
}

void Network::ChargeLocked(const Message& m) {
  sent_.Charge(m.src, m.dst, m.type, m.WireBytes(), m.event_count);
  transfer_us_[MakeKey(m.src, m.dst)] +=
      options_.link_model.TransferTimeUs(m.WireBytes());
}

Status Network::Send(Message m) {
  Channel* inbox = nullptr;
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(m.dst);
    if (it == inboxes_.end()) {
      return Status::NotFound("unknown destination node " + std::to_string(m.dst));
    }
    inbox = it->second.get();
    ChargeLocked(m);
    if (options_.duplicate_prob > 0 &&
        fault_rng_.Bernoulli(options_.duplicate_prob)) {
      // Retransmission: the wire carries the message again.
      ChargeLocked(m);
      ++duplicates_injected_;
      duplicate = true;
    }
  }
  m.send_time_us = clock_->NowUs();
  // Push outside the lock: a full inbox must not block unrelated senders.
  if (duplicate) {
    Message copy = m;
    if (!inbox->Push(std::move(copy))) {
      return Status::NetworkError("inbox of node closed");
    }
  }
  if (!inbox->Push(std::move(m))) {
    return Status::NetworkError("inbox of node closed");
  }
  return Status::OK();
}

uint64_t Network::duplicates_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_injected_;
}

Network::LinkStats Network::GetLinkStats(NodeId src, NodeId dst) const {
  auto links = sent_.Links();
  auto it = links.find(MakeKey(src, dst));
  LinkStats out;
  if (it != links.end()) out.counters = it->second;
  std::lock_guard<std::mutex> lock(mu_);
  auto tit = transfer_us_.find(MakeKey(src, dst));
  if (tit != transfer_us_.end()) out.simulated_transfer_us = tit->second;
  return out;
}

std::map<std::pair<NodeId, NodeId>, Network::LinkStats> Network::AllLinks() const {
  std::map<std::pair<NodeId, NodeId>, LinkStats> out;
  for (const auto& [key, counters] : sent_.Links()) out[key].counters = counters;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, us] : transfer_us_) out[key].simulated_transfer_us = us;
  return out;
}

transport::LinkTrafficMap Network::LinkTraffic() const { return sent_.Links(); }

Network::LinkStats Network::TotalStats() const {
  LinkStats total;
  for (const auto& [key, stats] : AllLinks()) {
    (void)key;
    total.counters += stats.counters;
    total.simulated_transfer_us += stats.simulated_transfer_us;
  }
  return total;
}

std::map<MessageType, TrafficCounters> Network::StatsByType() const {
  return sent_.ByType();
}

void Network::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    inbox->Close();
  }
}

std::vector<NodeId> Network::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

}  // namespace dema::net
