#include "net/network.h"

namespace dema::net {

Network::Network(const Clock* clock) : Network(clock, Options()) {}

Status Network::RegisterNode(NodeId id) {
  return RegisterNode(id, options_.inbox_capacity);
}

Status Network::RegisterNode(NodeId id, size_t inbox_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      inboxes_.emplace(id, std::make_unique<Channel>(inbox_capacity));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already registered");
  }
  order_.push_back(id);
  return Status::OK();
}

Channel* Network::Inbox(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  return it == inboxes_.end() ? nullptr : it->second.get();
}

void Network::ChargeLocked(const Message& m) {
  LinkStats& link = links_[MakeKey(m.src, m.dst)];
  link.counters.messages += 1;
  link.counters.bytes += m.WireBytes();
  link.counters.events += m.event_count;
  link.simulated_transfer_us += options_.link_model.TransferTimeUs(m.WireBytes());
  TrafficCounters& tc = by_type_[m.type];
  tc.messages += 1;
  tc.bytes += m.WireBytes();
  tc.events += m.event_count;
}

Status Network::Send(Message m) {
  Channel* inbox = nullptr;
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inboxes_.find(m.dst);
    if (it == inboxes_.end()) {
      return Status::NotFound("unknown destination node " + std::to_string(m.dst));
    }
    inbox = it->second.get();
    ChargeLocked(m);
    if (options_.duplicate_prob > 0 &&
        fault_rng_.Bernoulli(options_.duplicate_prob)) {
      // Retransmission: the wire carries the message again.
      ChargeLocked(m);
      ++duplicates_injected_;
      duplicate = true;
    }
  }
  m.send_time_us = clock_->NowUs();
  // Push outside the lock: a full inbox must not block unrelated senders.
  if (duplicate) {
    Message copy = m;
    if (!inbox->Push(std::move(copy))) {
      return Status::NetworkError("inbox of node closed");
    }
  }
  if (!inbox->Push(std::move(m))) {
    return Status::NetworkError("inbox of node closed");
  }
  return Status::OK();
}

uint64_t Network::duplicates_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_injected_;
}

Network::LinkStats Network::GetLinkStats(NodeId src, NodeId dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(MakeKey(src, dst));
  return it == links_.end() ? LinkStats{} : it->second;
}

std::map<std::pair<NodeId, NodeId>, Network::LinkStats> Network::AllLinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return links_;
}

transport::LinkTrafficMap Network::LinkTraffic() const {
  std::lock_guard<std::mutex> lock(mu_);
  transport::LinkTrafficMap out;
  for (const auto& [key, stats] : links_) out[key] = stats.counters;
  return out;
}

Network::LinkStats Network::TotalStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LinkStats total;
  for (const auto& [key, stats] : links_) {
    (void)key;
    total.counters += stats.counters;
    total.simulated_transfer_us += stats.simulated_transfer_us;
  }
  return total;
}

std::map<MessageType, TrafficCounters> Network::StatsByType() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_type_;
}

void Network::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    inbox->Close();
  }
}

std::vector<NodeId> Network::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

}  // namespace dema::net
