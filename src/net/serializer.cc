#include "net/serializer.h"

namespace dema::net {

Status Reader::GetString(std::string* out) {
  uint32_t len = 0;
  DEMA_RETURN_NOT_OK(GetU32(&len));
  if (pos_ + len > size_) {
    return Status::SerializationError("string length " + std::to_string(len) +
                                      " exceeds remaining buffer");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status Reader::GetVarint(uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (shift >= 64) {
      return Status::SerializationError("varint longer than 64 bits");
    }
    uint8_t byte = 0;
    DEMA_RETURN_NOT_OK(GetU8(&byte));
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = value;
  return Status::OK();
}

Status Reader::GetZigzag(int64_t* out) {
  uint64_t raw = 0;
  DEMA_RETURN_NOT_OK(GetVarint(&raw));
  *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return Status::OK();
}

Status Reader::GetEvent(Event* out) {
  DEMA_RETURN_NOT_OK(GetDouble(&out->value));
  DEMA_RETURN_NOT_OK(GetI64(&out->timestamp));
  DEMA_RETURN_NOT_OK(GetU32(&out->node));
  DEMA_RETURN_NOT_OK(GetU32(&out->seq));
  return Status::OK();
}

Status Reader::GetEvents(std::vector<Event>* out) {
  uint32_t n = 0;
  DEMA_RETURN_NOT_OK(GetU32(&n));
  if (static_cast<size_t>(n) * kEventWireBytes > remaining()) {
    return Status::SerializationError("event count " + std::to_string(n) +
                                      " exceeds remaining buffer");
  }
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Event e;
    DEMA_RETURN_NOT_OK(GetEvent(&e));
    out->push_back(e);
  }
  return Status::OK();
}

}  // namespace dema::net
