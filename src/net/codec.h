#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "net/serializer.h"

namespace dema::net {

/// \brief Wire encoding of an event sequence.
enum class EventCodec : uint8_t {
  /// Fixed-width records (24 B/event): fastest, supports the stride-based
  /// value fast path.
  kFixed = 0,
  /// Delta/varint compression (~9-14 B/event typical): timestamps, node ids,
  /// and sequence numbers are zigzag deltas; values are raw doubles, or
  /// varint bit-pattern deltas when the sequence is sorted and non-negative
  /// (IEEE-754 bit order equals numeric order for non-negative doubles, so
  /// ascending values give small non-negative deltas).
  kCompact = 1,
};

/// \brief Encodes \p events into \p w: codec tag, count, then the payload.
///
/// \p sorted_hint enables the bit-delta value encoding for kCompact when the
/// events are ascending by value (the encoder verifies non-negativity and
/// falls back to raw values otherwise).
void EncodeEvents(Writer* w, const std::vector<Event>& events, EventCodec codec,
                  bool sorted_hint = false);

/// \brief Decodes an `EncodeEvents` stream (any codec) into \p out.
Status DecodeEvents(Reader* r, std::vector<Event>* out);

/// \brief Streams only the values of an `EncodeEvents` stream to \p fn
/// (the sketch root's fast path); returns the event count.
template <typename Fn>
Status ForEachEncodedValue(Reader* r, Fn&& fn, uint64_t* count_out);

// --- implementation of the template -----------------------------------------

namespace codec_internal {
/// Decodes the per-event stream invoking fn(value) per event; skips the
/// non-value fields as cheaply as the codec allows.
template <typename Fn>
Status StreamValues(Reader* r, EventCodec codec, uint64_t count, uint8_t value_mode,
                    Fn&& fn) {
  if (codec == EventCodec::kFixed) {
    // Validated stride over the fixed-width records: one bounds check for
    // the whole batch, then a raw pointer walk (sketch-root hot path). The
    // division form keeps a corrupt count near 2^64 from wrapping the check.
    if (count > r->remaining() / kEventWireBytes) {
      return Status::SerializationError("event count exceeds remaining buffer");
    }
    const uint8_t* p = r->raw();
    for (uint64_t i = 0; i < count; ++i, p += kEventWireBytes) {
      double value;
      std::memcpy(&value, p, sizeof(value));
      fn(value);
    }
    return r->Skip(count * kEventWireBytes);
  }
  uint64_t value_bits = 0;
  int64_t prev_ts = 0, prev_node = 0, prev_seq = 0;
  for (uint64_t i = 0; i < count; ++i) {
    double value;
    if (value_mode == 1) {
      uint64_t delta = 0;
      DEMA_RETURN_NOT_OK(r->GetVarint(&delta));
      value_bits += delta;
      std::memcpy(&value, &value_bits, sizeof(value));
    } else {
      DEMA_RETURN_NOT_OK(r->GetDouble(&value));
    }
    int64_t d_ts = 0, d_node = 0, d_seq = 0;
    DEMA_RETURN_NOT_OK(r->GetZigzag(&d_ts));
    DEMA_RETURN_NOT_OK(r->GetZigzag(&d_node));
    DEMA_RETURN_NOT_OK(r->GetZigzag(&d_seq));
    prev_ts += d_ts;
    prev_node += d_node;
    prev_seq += d_seq;
    fn(value);
  }
  return Status::OK();
}
}  // namespace codec_internal

template <typename Fn>
Status ForEachEncodedValue(Reader* r, Fn&& fn, uint64_t* count_out) {
  uint8_t tag = 0;
  DEMA_RETURN_NOT_OK(r->GetU8(&tag));
  if (tag > static_cast<uint8_t>(EventCodec::kCompact)) {
    return Status::SerializationError("unknown event codec tag");
  }
  EventCodec codec = static_cast<EventCodec>(tag);
  uint64_t count = 0;
  DEMA_RETURN_NOT_OK(r->GetVarint(&count));
  uint8_t value_mode = 0;
  if (codec == EventCodec::kCompact) {
    DEMA_RETURN_NOT_OK(r->GetU8(&value_mode));
  } else if (count > r->remaining() / kEventWireBytes) {
    return Status::SerializationError("event count exceeds remaining buffer");
  }
  DEMA_RETURN_NOT_OK(codec_internal::StreamValues(r, codec, count, value_mode,
                                                  std::forward<Fn>(fn)));
  if (count_out) *count_out = count;
  return Status::OK();
}

}  // namespace dema::net
