#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"

namespace dema::net {

/// Borrowed, read-only view of serialized bytes. The zero-copy decode
/// contract: a span never owns its bytes — whoever hands one out guarantees
/// the backing buffer outlives every read through it (for received messages,
/// `Message` pins the arena block; see `Message::payload_bytes()`).
using ByteSpan = std::span<const uint8_t>;

/// \brief Append-only binary encoder (little-endian, fixed width).
///
/// All inter-node messages are serialized to bytes before they enter a
/// channel; the byte count of the resulting buffer is exactly what the
/// network metrics charge to the link, so "network cost" numbers reflect an
/// honest wire format rather than in-memory object sizes.
class Writer {
 public:
  /// The encoded bytes so far.
  const std::vector<uint8_t>& buffer() const { return buf_; }
  /// Moves the encoded bytes out of the writer.
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  /// Number of bytes written so far.
  size_t size() const { return buf_.size(); }

  /// Appends an unsigned 8-bit integer.
  void PutU8(uint8_t v) { buf_.push_back(v); }
  /// Appends an unsigned 16-bit integer.
  void PutU16(uint16_t v) { PutFixed(&v, sizeof(v)); }
  /// Appends an unsigned 32-bit integer.
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  /// Appends an unsigned 64-bit integer.
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  /// Appends a signed 64-bit integer.
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  /// Appends an IEEE-754 double.
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }
  /// Appends a length-prefixed string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  /// Appends \p n raw bytes (no length prefix; the caller owns framing).
  void PutBytes(const uint8_t* p, size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }
  /// Appends an unsigned LEB128 varint (1 byte for values < 128).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }
  /// Appends a zigzag-encoded signed varint (small magnitudes stay small).
  void PutZigzag(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }
  /// Appends one event (value, timestamp, node, seq).
  void PutEvent(const Event& e) {
    PutDouble(e.value);
    PutI64(e.timestamp);
    PutU32(e.node);
    PutU32(e.seq);
  }
  /// Appends a length-prefixed vector of events.
  void PutEvents(const std::vector<Event>& events) {
    PutU32(static_cast<uint32_t>(events.size()));
    for (const Event& e : events) PutEvent(e);
  }

 private:
  void PutFixed(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

/// \brief Sequential binary decoder matching `Writer`.
///
/// Every `Get*` returns a Status so truncated or corrupt buffers surface as
/// `SerializationError` instead of undefined behaviour.
class Reader {
 public:
  /// Wraps \p data (not owned; must outlive the reader).
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  /// Wraps a byte vector (not owned; must outlive the reader).
  explicit Reader(const std::vector<uint8_t>& buf) : Reader(buf.data(), buf.size()) {}
  /// Wraps a borrowed span (not owned; the backing must outlive the reader).
  explicit Reader(ByteSpan bytes) : Reader(bytes.data(), bytes.size()) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// Pointer to the next unconsumed byte (for validated bulk fast paths).
  const uint8_t* raw() const { return data_ + pos_; }
  /// Advances past \p n bytes; fails when fewer remain.
  Status Skip(size_t n) {
    if (pos_ + n > size_) {
      return Status::SerializationError("skip past end of buffer");
    }
    pos_ += n;
    return Status::OK();
  }
  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == size_; }

  /// Reads an unsigned 8-bit integer into \p out.
  Status GetU8(uint8_t* out) { return GetFixed(out, sizeof(*out)); }
  /// Reads an unsigned 16-bit integer into \p out.
  Status GetU16(uint16_t* out) { return GetFixed(out, sizeof(*out)); }
  /// Reads an unsigned 32-bit integer into \p out.
  Status GetU32(uint32_t* out) { return GetFixed(out, sizeof(*out)); }
  /// Reads an unsigned 64-bit integer into \p out.
  Status GetU64(uint64_t* out) { return GetFixed(out, sizeof(*out)); }
  /// Reads a signed 64-bit integer into \p out.
  Status GetI64(int64_t* out) { return GetFixed(out, sizeof(*out)); }
  /// Reads an IEEE-754 double into \p out.
  Status GetDouble(double* out) { return GetFixed(out, sizeof(*out)); }
  /// Reads a length-prefixed string into \p out.
  Status GetString(std::string* out);
  /// Reads an unsigned LEB128 varint into \p out.
  Status GetVarint(uint64_t* out);
  /// Reads a zigzag-encoded signed varint into \p out.
  Status GetZigzag(int64_t* out);
  /// Reads one event into \p out.
  Status GetEvent(Event* out);
  /// Reads a length-prefixed vector of events into \p out.
  Status GetEvents(std::vector<Event>* out);

 private:
  Status GetFixed(void* p, size_t n) {
    if (pos_ + n > size_) {
      return Status::SerializationError("buffer underflow: need " +
                                        std::to_string(n) + " bytes, have " +
                                        std::to_string(size_ - pos_));
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dema::net
