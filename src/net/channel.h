#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/time.h"
#include "net/message.h"

namespace dema::net {

/// \brief Cumulative traffic counters for a channel or link.
struct TrafficCounters {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Raw events carried inside EventBatch/CandidateReply payloads (the
  /// paper's event-count network-cost metric).
  uint64_t events = 0;

  TrafficCounters& operator+=(const TrafficCounters& o) {
    messages += o.messages;
    bytes += o.bytes;
    events += o.events;
    return *this;
  }
};

/// \brief Thread-safe MPSC message queue with traffic accounting.
///
/// One channel per receiving node ("inbox"). Multiple producers call
/// `Push`; the owning node's run loop calls `Pop`/`TryPop`. A bounded
/// capacity (in messages) provides backpressure: `Push` blocks until space is
/// available, which is how the threaded driver measures *sustainable*
/// throughput rather than unbounded buffering.
class Channel {
 public:
  /// Creates a channel; \p capacity 0 means unbounded.
  explicit Channel(size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues \p m, blocking while the channel is full. Returns false when
  /// the channel was closed (the message is dropped).
  bool Push(Message m);

  /// Enqueues \p m if space is available; never blocks.
  bool TryPush(Message m);

  /// Outcome of a bounded-wait push (`PushFor`).
  enum class PushResult {
    kPushed,  ///< enqueued; *m was consumed
    kFull,    ///< still full after the timeout; *m left intact
    kClosed,  ///< channel closed; *m left intact
  };

  /// Enqueues \p *m, waiting up to \p timeout_us for space. Unlike `Push`,
  /// the wait is bounded — callers that must stay responsive to external
  /// shutdown (e.g. the TCP transport's `Send` watching for a dead I/O
  /// loop) poll in timeout-sized slices. On `kFull`/`kClosed` the message
  /// is left in \p *m so the caller can retry or report it.
  PushResult PushFor(Message* m, DurationUs timeout_us);

  /// Dequeues the next message, blocking until one is available or the
  /// channel is closed-and-drained (returns nullopt then).
  std::optional<Message> Pop();

  /// Dequeues the next message if one is immediately available.
  std::optional<Message> TryPop();

  /// Dequeues with a timeout; returns nullopt on timeout or close-and-drain.
  std::optional<Message> PopFor(DurationUs timeout_us);

  /// Closes the channel: producers fail, consumers drain remaining messages.
  void Close();

  /// True once closed (messages may still be draining).
  bool closed() const;

  /// Messages currently queued.
  size_t size() const;

  /// Total traffic that has passed through (pushed into) this channel.
  TrafficCounters counters() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<Message> queue_;
  TrafficCounters counters_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace dema::net
