#include "net/codec.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace dema::net {

namespace {

/// True when every value is non-negative and ascending — the precondition
/// for bit-delta value encoding.
bool SortedNonNegative(const std::vector<Event>& events) {
  double prev = 0;
  for (const Event& e : events) {
    if (e.value < prev || std::signbit(e.value)) return false;
    prev = e.value;
  }
  return true;
}

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

void EncodeEvents(Writer* w, const std::vector<Event>& events, EventCodec codec,
                  bool sorted_hint) {
  w->PutU8(static_cast<uint8_t>(codec));
  w->PutVarint(events.size());
  if (codec == EventCodec::kFixed) {
    for (const Event& e : events) w->PutEvent(e);
    return;
  }
  // kCompact: value mode 1 = ascending bit-pattern deltas, 0 = raw doubles.
  uint8_t value_mode =
      sorted_hint && SortedNonNegative(events) ? 1 : 0;
  w->PutU8(value_mode);
  uint64_t prev_bits = 0;
  int64_t prev_ts = 0, prev_node = 0, prev_seq = 0;
  for (const Event& e : events) {
    if (value_mode == 1) {
      uint64_t bits = BitsOf(e.value);
      w->PutVarint(bits - prev_bits);  // non-negative: IEEE order == numeric
      prev_bits = bits;
    } else {
      w->PutDouble(e.value);
    }
    w->PutZigzag(e.timestamp - prev_ts);
    w->PutZigzag(static_cast<int64_t>(e.node) - prev_node);
    w->PutZigzag(static_cast<int64_t>(e.seq) - prev_seq);
    prev_ts = e.timestamp;
    prev_node = e.node;
    prev_seq = e.seq;
  }
}

Status DecodeEvents(Reader* r, std::vector<Event>* out) {
  uint8_t tag = 0;
  DEMA_RETURN_NOT_OK(r->GetU8(&tag));
  if (tag > static_cast<uint8_t>(EventCodec::kCompact)) {
    return Status::SerializationError("unknown event codec tag");
  }
  EventCodec codec = static_cast<EventCodec>(tag);
  uint64_t count = 0;
  DEMA_RETURN_NOT_OK(r->GetVarint(&count));
  out->clear();

  if (codec == EventCodec::kFixed) {
    // Division form: `count * kEventWireBytes` wraps for corrupt counts near
    // 2^64 and would let a hostile payload drive a huge reserve().
    if (count > r->remaining() / kEventWireBytes) {
      return Status::SerializationError("event count exceeds remaining buffer");
    }
    out->resize(count);
    if constexpr (sizeof(Event) == kEventWireBytes &&
                  std::endian::native == std::endian::little) {
      // `Event` is laid out exactly like its wire record (LE, no padding), so
      // the whole batch is one bounds-checked memcpy instead of 4 field reads
      // per event — the decode half of the zero-copy receive hot path.
      std::memcpy(out->data(), r->raw(), count * kEventWireBytes);
      return r->Skip(count * kEventWireBytes);
    } else {
      for (uint64_t i = 0; i < count; ++i) {
        DEMA_RETURN_NOT_OK(r->GetEvent(&(*out)[i]));
      }
      return Status::OK();
    }
  }

  uint8_t value_mode = 0;
  DEMA_RETURN_NOT_OK(r->GetU8(&value_mode));
  if (value_mode > 1) {
    return Status::SerializationError("unknown compact value mode");
  }
  // Compact events are at least 4 bytes each (value byte + three deltas).
  // Division form so a corrupt count near 2^64 cannot wrap past the check.
  if (count > r->remaining() / 4) {
    return Status::SerializationError("event count exceeds remaining buffer");
  }
  out->reserve(count);
  uint64_t value_bits = 0;
  int64_t prev_ts = 0, prev_node = 0, prev_seq = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Event e;
    if (value_mode == 1) {
      uint64_t delta = 0;
      DEMA_RETURN_NOT_OK(r->GetVarint(&delta));
      value_bits += delta;
      std::memcpy(&e.value, &value_bits, sizeof(e.value));
    } else {
      DEMA_RETURN_NOT_OK(r->GetDouble(&e.value));
    }
    int64_t d_ts = 0, d_node = 0, d_seq = 0;
    DEMA_RETURN_NOT_OK(r->GetZigzag(&d_ts));
    DEMA_RETURN_NOT_OK(r->GetZigzag(&d_node));
    DEMA_RETURN_NOT_OK(r->GetZigzag(&d_seq));
    prev_ts += d_ts;
    prev_node += d_node;
    prev_seq += d_seq;
    e.timestamp = prev_ts;
    if (prev_node < 0 || prev_node > UINT32_MAX || prev_seq < 0 ||
        prev_seq > UINT32_MAX) {
      return Status::SerializationError("compact delta out of field range");
    }
    e.node = static_cast<NodeId>(prev_node);
    e.seq = static_cast<uint32_t>(prev_seq);
    out->push_back(e);
  }
  return Status::OK();
}

}  // namespace dema::net
