#include "net/keyed.h"

#include <cstring>

namespace dema::net {

void KeyedBatch::SerializeTo(Writer* w) const {
  w->PutU32(shard);
  w->PutU32(static_cast<uint32_t>(entries.size()));
  for (const KeyedEntry& e : entries) {
    w->PutU64(e.key);
    w->PutU32(static_cast<uint32_t>(e.payload.size()));
    w->PutBytes(e.payload.data(), e.payload.size());
  }
}

Result<KeyedBatch> KeyedBatch::Deserialize(Reader* r) {
  KeyedBatch b;
  DEMA_RETURN_NOT_OK(r->GetU32(&b.shard));
  uint32_t n = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&n));
  // Every entry needs at least its key + length prefix; reject counts the
  // remaining buffer cannot possibly hold before reserving.
  constexpr size_t kMinEntryBytes = sizeof(KeyId) + sizeof(uint32_t);
  if (static_cast<size_t>(n) * kMinEntryBytes > r->remaining()) {
    return Status::SerializationError("entry count exceeds remaining buffer");
  }
  b.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    KeyedEntry e;
    DEMA_RETURN_NOT_OK(r->GetU64(&e.key));
    uint32_t len = 0;
    DEMA_RETURN_NOT_OK(r->GetU32(&len));
    if (len > r->remaining()) {
      return Status::SerializationError("entry payload exceeds remaining buffer");
    }
    e.payload.assign(r->raw(), r->raw() + len);
    DEMA_RETURN_NOT_OK(r->Skip(len));
    b.entries.push_back(std::move(e));
  }
  if (!r->AtEnd()) {
    return Status::SerializationError("trailing bytes after keyed batch");
  }
  return b;
}

Result<uint32_t> KeyedBatch::PeekShard(ByteSpan payload) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::SerializationError("keyed batch header truncated");
  }
  uint32_t shard = 0;
  std::memcpy(&shard, payload.data(), sizeof(shard));
  return shard;
}

Result<MessageType> KeyedInnerType(MessageType outer) {
  switch (outer) {
    case MessageType::kShardSynopsisBatch:
      return MessageType::kSynopsisBatch;
    case MessageType::kShardCandidateRequest:
      return MessageType::kCandidateRequest;
    case MessageType::kShardCandidateReply:
      return MessageType::kCandidateReply;
    case MessageType::kShardGammaUpdate:
      return MessageType::kGammaUpdate;
    default:
      return Status::InvalidArgument(std::string(MessageTypeToString(outer)) +
                                     " is not a keyed envelope type");
  }
}

Result<MessageType> KeyedOuterType(MessageType inner) {
  switch (inner) {
    case MessageType::kSynopsisBatch:
      return MessageType::kShardSynopsisBatch;
    case MessageType::kCandidateRequest:
      return MessageType::kShardCandidateRequest;
    case MessageType::kCandidateReply:
      return MessageType::kShardCandidateReply;
    case MessageType::kGammaUpdate:
      return MessageType::kShardGammaUpdate;
    default:
      return Status::InvalidArgument(std::string(MessageTypeToString(inner)) +
                                     " is never carried inside a keyed envelope");
  }
}

void KeyedQuery::SerializeTo(Writer* w) const {
  w->PutU64(query_id);
  w->PutU32(static_cast<uint32_t>(keys.size()));
  for (KeyId k : keys) w->PutU64(k);
  w->PutU32(static_cast<uint32_t>(quantiles.size()));
  for (double q : quantiles) w->PutDouble(q);
}

Result<KeyedQuery> KeyedQuery::Deserialize(Reader* r) {
  KeyedQuery q;
  DEMA_RETURN_NOT_OK(r->GetU64(&q.query_id));
  uint32_t nk = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&nk));
  if (static_cast<size_t>(nk) * sizeof(KeyId) > r->remaining()) {
    return Status::SerializationError("key count exceeds remaining buffer");
  }
  q.keys.reserve(nk);
  for (uint32_t i = 0; i < nk; ++i) {
    KeyId k = 0;
    DEMA_RETURN_NOT_OK(r->GetU64(&k));
    q.keys.push_back(k);
  }
  uint32_t nq = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&nq));
  if (static_cast<size_t>(nq) * sizeof(double) > r->remaining()) {
    return Status::SerializationError("quantile count exceeds remaining buffer");
  }
  q.quantiles.reserve(nq);
  for (uint32_t i = 0; i < nq; ++i) {
    double v = 0;
    DEMA_RETURN_NOT_OK(r->GetDouble(&v));
    q.quantiles.push_back(v);
  }
  return q;
}

void KeyedQueryReply::SerializeTo(Writer* w) const {
  w->PutU64(query_id);
  w->PutString(error);
  w->PutU32(static_cast<uint32_t>(quantiles.size()));
  for (double q : quantiles) w->PutDouble(q);
  w->PutU32(static_cast<uint32_t>(answers.size()));
  for (const KeyedAnswer& a : answers) {
    w->PutU64(a.key);
    w->PutU8(a.found ? 1 : 0);
    w->PutU64(a.window_id);
    w->PutU64(a.global_size);
    w->PutU8(a.degraded ? 1 : 0);
    w->PutU64(a.rank_error_bound);
    w->PutU32(static_cast<uint32_t>(a.values.size()));
    for (double v : a.values) w->PutDouble(v);
  }
}

Result<KeyedQueryReply> KeyedQueryReply::Deserialize(Reader* r) {
  KeyedQueryReply rep;
  DEMA_RETURN_NOT_OK(r->GetU64(&rep.query_id));
  DEMA_RETURN_NOT_OK(r->GetString(&rep.error));
  uint32_t nq = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&nq));
  if (static_cast<size_t>(nq) * sizeof(double) > r->remaining()) {
    return Status::SerializationError("quantile count exceeds remaining buffer");
  }
  rep.quantiles.reserve(nq);
  for (uint32_t i = 0; i < nq; ++i) {
    double v = 0;
    DEMA_RETURN_NOT_OK(r->GetDouble(&v));
    rep.quantiles.push_back(v);
  }
  uint32_t na = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&na));
  constexpr size_t kMinAnswerBytes =
      3 * sizeof(uint64_t) + 2 * sizeof(uint8_t) + 2 * sizeof(uint32_t);
  if (static_cast<size_t>(na) * kMinAnswerBytes > r->remaining()) {
    return Status::SerializationError("answer count exceeds remaining buffer");
  }
  rep.answers.reserve(na);
  for (uint32_t i = 0; i < na; ++i) {
    KeyedAnswer a;
    DEMA_RETURN_NOT_OK(r->GetU64(&a.key));
    uint8_t found = 0, degraded = 0;
    DEMA_RETURN_NOT_OK(r->GetU8(&found));
    DEMA_RETURN_NOT_OK(r->GetU64(&a.window_id));
    DEMA_RETURN_NOT_OK(r->GetU64(&a.global_size));
    DEMA_RETURN_NOT_OK(r->GetU8(&degraded));
    DEMA_RETURN_NOT_OK(r->GetU64(&a.rank_error_bound));
    a.found = found != 0;
    a.degraded = degraded != 0;
    uint32_t nv = 0;
    DEMA_RETURN_NOT_OK(r->GetU32(&nv));
    if (static_cast<size_t>(nv) * sizeof(double) > r->remaining()) {
      return Status::SerializationError("value count exceeds remaining buffer");
    }
    a.values.reserve(nv);
    for (uint32_t j = 0; j < nv; ++j) {
      double v = 0;
      DEMA_RETURN_NOT_OK(r->GetDouble(&v));
      a.values.push_back(v);
    }
    rep.answers.push_back(std::move(a));
  }
  return rep;
}

}  // namespace dema::net
