#include "net/message.h"

#include <cstring>

namespace dema::net {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kEventBatch:
      return "EventBatch";
    case MessageType::kWindowEnd:
      return "WindowEnd";
    case MessageType::kSynopsisBatch:
      return "SynopsisBatch";
    case MessageType::kCandidateRequest:
      return "CandidateRequest";
    case MessageType::kCandidateReply:
      return "CandidateReply";
    case MessageType::kGammaUpdate:
      return "GammaUpdate";
    case MessageType::kResult:
      return "Result";
    case MessageType::kSketchSummary:
      return "SketchSummary";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kTimeAdvance:
      return "TimeAdvance";
    case MessageType::kGammaSyncRequest:
      return "GammaSyncRequest";
    case MessageType::kShardSynopsisBatch:
      return "ShardSynopsisBatch";
    case MessageType::kShardCandidateRequest:
      return "ShardCandidateRequest";
    case MessageType::kShardCandidateReply:
      return "ShardCandidateReply";
    case MessageType::kShardGammaUpdate:
      return "ShardGammaUpdate";
    case MessageType::kShardQuery:
      return "ShardQuery";
    case MessageType::kShardQueryReply:
      return "ShardQueryReply";
    case MessageType::kHeartbeat:
      return "Heartbeat";
    case MessageType::kAck:
      return "Ack";
  }
  return "Unknown";
}

void Heartbeat::SerializeTo(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutI64(probe_time_us);
}

Result<Heartbeat> Heartbeat::Deserialize(Reader* r) {
  Heartbeat h;
  uint8_t kind = 0;
  DEMA_RETURN_NOT_OK(r->GetU8(&kind));
  if (kind > static_cast<uint8_t>(Kind::kPong)) {
    return Status::SerializationError("heartbeat with unknown kind " +
                                      std::to_string(kind));
  }
  h.kind = static_cast<Kind>(kind);
  DEMA_RETURN_NOT_OK(r->GetI64(&h.probe_time_us));
  return h;
}

void CumulativeAck::SerializeTo(Writer* w) const {
  w->PutU32(static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w->PutU32(e.src);
    w->PutU32(e.dst);
    w->PutU32(e.cum_seq);
  }
}

Result<CumulativeAck> CumulativeAck::Deserialize(Reader* r) {
  CumulativeAck a;
  uint32_t count = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&count));
  // An ack never legitimately carries more streams than the sender hosts
  // nodes; reuse the hello bound as the corrupt-count defence.
  if (count > (1u << 16)) {
    return Status::SerializationError("ack announces too many streams");
  }
  a.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    DEMA_RETURN_NOT_OK(r->GetU32(&e.src));
    DEMA_RETURN_NOT_OK(r->GetU32(&e.dst));
    DEMA_RETURN_NOT_OK(r->GetU32(&e.cum_seq));
    a.entries.push_back(e);
  }
  return a;
}

void TimeAdvance::SerializeTo(Writer* w) const {
  w->PutI64(watermark_us);
  w->PutU8(final_marker ? 1 : 0);
}

Result<TimeAdvance> TimeAdvance::Deserialize(Reader* r) {
  TimeAdvance t;
  DEMA_RETURN_NOT_OK(r->GetI64(&t.watermark_us));
  uint8_t fin = 0;
  DEMA_RETURN_NOT_OK(r->GetU8(&fin));
  t.final_marker = fin != 0;
  return t;
}

void EventBatch::SerializeTo(Writer* w) const {
  w->PutU64(window_id);
  w->PutU8(sorted ? 1 : 0);
  w->PutU8(last_batch ? 1 : 0);
  EncodeEvents(w, events, codec, /*sorted_hint=*/sorted);
}

Result<WindowId> EventBatch::PeekWindowId(ByteSpan payload) {
  if (payload.size() < sizeof(WindowId)) {
    return Status::SerializationError("event batch header truncated");
  }
  WindowId id;
  std::memcpy(&id, payload.data(), sizeof(id));
  return id;
}

Result<EventBatch> EventBatch::Deserialize(Reader* r) {
  EventBatch b;
  DEMA_RETURN_NOT_OK(r->GetU64(&b.window_id));
  uint8_t sorted = 0, last = 0;
  DEMA_RETURN_NOT_OK(r->GetU8(&sorted));
  DEMA_RETURN_NOT_OK(r->GetU8(&last));
  b.sorted = sorted != 0;
  b.last_batch = last != 0;
  DEMA_RETURN_NOT_OK(DecodeEvents(r, &b.events));
  return b;
}

void WindowEnd::SerializeTo(Writer* w) const {
  w->PutU64(window_id);
  w->PutU64(local_window_size);
  w->PutI64(close_time_us);
}

Result<WindowEnd> WindowEnd::Deserialize(Reader* r) {
  WindowEnd e;
  DEMA_RETURN_NOT_OK(r->GetU64(&e.window_id));
  DEMA_RETURN_NOT_OK(r->GetU64(&e.local_window_size));
  DEMA_RETURN_NOT_OK(r->GetI64(&e.close_time_us));
  return e;
}

}  // namespace dema::net
