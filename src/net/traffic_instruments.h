#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "net/channel.h"
#include "net/message.h"
#include "obs/registry.h"

namespace dema::net {

/// \brief Registry-backed traffic accounting shared by the in-process fabric
/// and the TCP transport.
///
/// One {messages, bytes, events} counter triple per directed link and per
/// message type, named `<prefix>.messages{link=S->D}` /
/// `<prefix>.bytes{type=SynopsisBatch}` etc. The registry instruments are
/// the single source of truth; `Links()` / `ByType()` materialize the
/// historical `TrafficCounters` map views from them, so existing accessor
/// APIs keep working while `Registry::ToJson()` exports the same numbers.
class TrafficInstruments {
 public:
  /// \p registry must outlive this object. \p prefix is e.g.
  /// "transport.sent" or "transport.recv".
  TrafficInstruments(obs::Registry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  TrafficInstruments(const TrafficInstruments&) = delete;
  TrafficInstruments& operator=(const TrafficInstruments&) = delete;

  /// Charges one message of \p bytes measured bytes to the (src, dst) link
  /// and the per-type breakdown. Thread-safe.
  void Charge(NodeId src, NodeId dst, MessageType type, uint64_t bytes,
              uint64_t events);

  /// Per-link counter view, keyed by the directed (src, dst) pair.
  std::map<std::pair<NodeId, NodeId>, TrafficCounters> Links() const;

  /// Per-message-type counter view.
  std::map<MessageType, TrafficCounters> ByType() const;

 private:
  struct Triple {
    obs::Counter* messages;
    obs::Counter* bytes;
    obs::Counter* events;
  };

  obs::Registry* registry_;
  const std::string prefix_;
  mutable std::mutex mu_;  // guards the triple maps, not the counters
  std::map<std::pair<NodeId, NodeId>, Triple> links_;
  std::map<MessageType, Triple> types_;
};

}  // namespace dema::net
