#include "net/traffic_instruments.h"

namespace dema::net {

void TrafficInstruments::Charge(NodeId src, NodeId dst, MessageType type,
                                uint64_t bytes, uint64_t events) {
  Triple link;
  Triple by_type;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto lit = links_.find({src, dst});
    if (lit == links_.end()) {
      const std::string label = "{link=" + std::to_string(src) + "->" +
                                std::to_string(dst) + "}";
      Triple t{registry_->GetCounter(prefix_ + ".messages" + label),
               registry_->GetCounter(prefix_ + ".bytes" + label),
               registry_->GetCounter(prefix_ + ".events" + label)};
      lit = links_.emplace(std::make_pair(src, dst), t).first;
    }
    link = lit->second;
    auto tit = types_.find(type);
    if (tit == types_.end()) {
      const std::string label =
          std::string("{type=") + MessageTypeToString(type) + "}";
      Triple t{registry_->GetCounter(prefix_ + ".messages" + label),
               registry_->GetCounter(prefix_ + ".bytes" + label),
               registry_->GetCounter(prefix_ + ".events" + label)};
      tit = types_.emplace(type, t).first;
    }
    by_type = tit->second;
  }
  link.messages->Increment();
  link.bytes->Increment(bytes);
  link.events->Increment(events);
  by_type.messages->Increment();
  by_type.bytes->Increment(bytes);
  by_type.events->Increment(events);
}

std::map<std::pair<NodeId, NodeId>, TrafficCounters> TrafficInstruments::Links()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::pair<NodeId, NodeId>, TrafficCounters> out;
  for (const auto& [key, t] : links_) {
    TrafficCounters& c = out[key];
    c.messages = t.messages->Value();
    c.bytes = t.bytes->Value();
    c.events = t.events->Value();
  }
  return out;
}

std::map<MessageType, TrafficCounters> TrafficInstruments::ByType() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<MessageType, TrafficCounters> out;
  for (const auto& [type, t] : types_) {
    TrafficCounters& c = out[type];
    c.messages = t.messages->Value();
    c.bytes = t.bytes->Value();
    c.events = t.events->Value();
  }
  return out;
}

}  // namespace dema::net
