#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/traffic_instruments.h"
#include "obs/registry.h"
#include "sim/tick/tick_queue.h"
#include "sim/tick/topology.h"
#include "transport/transport.h"

namespace dema::net {

/// \brief Analytic model of a point-to-point link.
///
/// Used for *reporting* only: the paper excludes network transfer time from
/// latency ("dominated by the network setup"), so the fabric never delays
/// delivery; it accumulates the simulated wire time a deployment would spend.
struct LinkModel {
  /// Link bandwidth; default 25 Gbit/s as in the paper's cluster.
  double bandwidth_bytes_per_sec = 25e9 / 8.0;
  /// One-way propagation + framing latency per message.
  DurationUs base_latency_us = 50;

  /// Simulated wire time for a message of \p bytes.
  double TransferTimeUs(uint64_t bytes) const {
    return static_cast<double>(base_latency_us) +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec * 1e6;
  }
};

/// \brief In-process network fabric connecting simulated nodes.
///
/// Each registered node owns an inbox `Channel`; `Send` delivers a framed
/// message to the destination inbox and charges the (src, dst) link metrics:
/// message count, wire bytes, carried raw events, and modelled transfer time.
/// These per-link counters are what the network-cost experiments (Fig. 6)
/// report.
///
/// The fabric is the in-process implementation of `transport::Transport`;
/// `TcpTransport` is the sockets one. Node logic sees only the interface.
class Network : public transport::Transport {
 public:
  /// How `Send` moves a message to its destination inbox.
  enum class DeliveryMode {
    /// Function-call delivery: `Send` pushes the inbox inline (the delay
    /// injector's multimap is the only buffering). The default.
    kInline,
    /// Discrete-event delivery: `Send` enqueues a hop event on the central
    /// tick queue at `now + link.TransferTimeUs(bytes)`; nothing reaches an
    /// inbox until the driver calls `AdvanceEvents`. With a routed
    /// `Options::topology` every message traverses its multi-hop path, one
    /// event per link. Fault injectors keep their exact RNG draw order, so
    /// seeded fault schedules replay identically in either mode; they act as
    /// event transforms here (drop/corrupt suppress the event, duplicate
    /// enqueues a second one, delay shifts the due time, and partition /
    /// node-down / unknown-destination are re-checked at delivery time).
    /// Single-threaded drivers only.
    kEvent,
  };

  struct Options {
    /// Inbox capacity in messages; 0 = unbounded. A bounded inbox gives
    /// backpressure, which the sustainable-throughput harness relies on.
    size_t inbox_capacity = 0;
    /// Analytic link model for simulated transfer-time reporting.
    LinkModel link_model;
    /// Fault injection: probability that a sent message is delivered twice
    /// (models at-least-once transports that retransmit). Duplicates are
    /// charged to the link metrics like any other transfer, and additionally
    /// tagged in the `net.duplicates.*` per-link counters so parity checks
    /// can subtract injected traffic.
    double duplicate_prob = 0;
    /// Fault injection: probability that a sent message is silently lost in
    /// transit (the sender still sees success). Lost messages are charged to
    /// the wire (they travelled) and counted in `net.dropped{cause=loss}`.
    double drop_prob = 0;
    /// Fault injection: upper bound on the extra in-flight delay of a
    /// message, in virtual microseconds (0 disables delaying). A delayed
    /// message is held back and redelivered once the fabric's virtual clock
    /// passes its due time — later sends on *any* link can overtake it, which
    /// is how the fabric models reordering. `FlushDelayed` releases all
    /// held messages at quiescence.
    DurationUs delay_us_max = 0;
    /// Probability that a message is delayed when `delay_us_max` > 0.
    double delay_prob = 1.0;
    /// Fault injection: probability that a sent message's frame suffers a
    /// random byte flip in transit. The fabric plays receiver: it computes
    /// the real CRC32C a sender would have framed, applies the flip, and
    /// re-verifies — a mismatch (always, for single-byte flips) drops the
    /// frame exactly as the TCP reader would, counted in
    /// `net.corrupted{layer=frame}` and `net.dropped{cause=corrupt}`. The
    /// checksum is exercised, not assumed.
    double corrupt_prob = 0;
    /// Fault injection: probability that a message from a node marked via
    /// `SetNodeTamper` has a protocol field tampered *with a valid CRC*
    /// (models a buggy or malicious local, not a noisy wire): the declared
    /// node id inside kSynopsisBatch / kCandidateReply payloads is flipped,
    /// so only the root's validation pass can catch it. Counted in
    /// `net.corrupted{layer=payload}`.
    double tamper_prob = 1.0;
    /// Seed for the fault-injection draw (deterministic runs).
    uint64_t fault_seed = 1;
    /// Metrics sink for the `transport.sent.*` instruments. When null, the
    /// fabric owns a private registry (reachable via `registry()`). Must
    /// outlive the network when provided.
    obs::Registry* registry = nullptr;
    /// Delivery mode (see `DeliveryMode`).
    DeliveryMode delivery = DeliveryMode::kInline;
    /// Routed multi-hop topology for event-driven delivery; null = a single
    /// direct hop per message (the flat `link_model`). Ignored in inline
    /// mode. Endpoint ids must cover every registered node id.
    std::shared_ptr<const tick::Topology> topology;
  };

  /// Creates a fabric with default options; \p clock stamps send times (must
  /// outlive the network).
  explicit Network(const Clock* clock);

  /// Creates a fabric with explicit options.
  Network(const Clock* clock, Options options);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node and creates its inbox with the fabric-default
  /// capacity. Fails on duplicate ids.
  Status RegisterNode(NodeId id);

  /// Registers a node with an explicit inbox capacity (0 = unbounded).
  Status RegisterNode(NodeId id, size_t inbox_capacity);

  /// Decommissions a node: closes and destroys its inbox (any `Inbox(id)`
  /// pointer becomes dangling). In-flight messages to it — delayed or
  /// event-queued — are dropped as `net.dropped{cause=unknown_dest}` when
  /// they come due. Fails when the id was never registered.
  Status UnregisterNode(NodeId id);

  /// The inbox of \p id, or nullptr when unknown. The pointer stays valid for
  /// the lifetime of the network.
  Channel* Inbox(NodeId id) override;

  /// Delivers \p m to `m.dst`'s inbox (blocking under backpressure) and
  /// charges the (src, dst) link. Fails when the destination is unknown or
  /// its inbox is closed. Stamps a per-(src, dst) sequence number into
  /// `m.seq` before delivery. Faults (loss, partition, down nodes) drop the
  /// message *silently* — the sender still sees OK, exactly like a lost
  /// datagram — and are tallied in the `net.dropped` counters.
  Status Send(Message m) override;

  // --- fault injection -------------------------------------------------------

  /// Blocks the directed link \p src -> \p dst: messages sent on it are
  /// silently dropped (`net.dropped{cause=partition}`) until `Heal`. Block
  /// both directions for a full partition.
  void Partition(NodeId src, NodeId dst);

  /// Unblocks the directed link \p src -> \p dst.
  void Heal(NodeId src, NodeId dst);

  /// Marks a node crashed (true) or recovered (false): while down, every
  /// message to or from it is silently dropped
  /// (`net.dropped{cause=node_down}`). The node's inbox survives, so a
  /// restarted logic can reuse it.
  void SetNodeDown(NodeId id, bool down);

  /// Marks node \p id as tampering (true) or honest again (false): while
  /// tampering, each of its protocol payloads is field-tampered with
  /// probability `tamper_prob` and delivered with a *valid* checksum — the
  /// corruption only the root's validation layer can catch.
  void SetNodeTamper(NodeId id, bool tampering);

  /// Messages corrupted by injection so far (frame flips + field tampers).
  uint64_t messages_corrupted() const;

  /// Delivers every held-back (delayed) message in due order, regardless of
  /// the virtual clock; returns how many were delivered. Drivers call this at
  /// quiescence so a delayed message can never be lost, only reordered.
  uint64_t FlushDelayed();

  // --- event-driven delivery -------------------------------------------------

  /// The configured delivery mode.
  DeliveryMode delivery_mode() const { return options_.delivery; }

  /// Hop events queued but not yet processed (event mode; 0 in inline mode).
  size_t pending_events() const;

  /// Event mode: advances the virtual clock to the earliest due event and
  /// processes *every* event due at that instant — one tick. Intermediate
  /// hops re-enqueue the message on its next link; final hops re-check the
  /// partition / node-down / destination state (faults act at delivery time)
  /// and push the inbox. Returns the number of hop events processed, 0 when
  /// the queue is idle. Counted in `sim.ticks` / `sim.events`, with per-tier
  /// hop latencies in `sim.hop_latency_us{tier=...}`.
  uint64_t AdvanceEvents();

  /// Current virtual fabric time in microseconds.
  uint64_t virtual_now_us() const;

  /// High-water mark of the event queue (event mode).
  uint64_t event_queue_peak() const;

  /// Messages silently dropped by fault injection so far (all causes).
  uint64_t messages_dropped() const;

  /// Messages that were held back for delayed redelivery so far.
  uint64_t messages_delayed() const;

  /// Held-back messages not yet redelivered.
  size_t delayed_in_flight() const;

  /// Cumulative per-link traffic totals.
  struct LinkStats {
    TrafficCounters counters;
    /// Sum of modelled wire times of all messages on this link.
    double simulated_transfer_us = 0;
  };

  /// Traffic on the directed link src -> dst (zeroes when never used).
  LinkStats GetLinkStats(NodeId src, NodeId dst) const;

  /// Every directed link that carried traffic, keyed by (src, dst).
  std::map<std::pair<NodeId, NodeId>, LinkStats> AllLinks() const;

  /// Sum of traffic over all links.
  LinkStats TotalStats() const;

  /// Traffic broken down by message type, summed over all links.
  std::map<MessageType, TrafficCounters> StatsByType() const;

  /// Per-link traffic counters (`Transport` interface view of `AllLinks`).
  transport::LinkTrafficMap LinkTraffic() const override;

  /// `Transport` interface alias of `StatsByType`.
  std::map<MessageType, TrafficCounters> TrafficByType() const override {
    return StatsByType();
  }

  /// Closes every inbox (consumers drain, producers fail).
  void CloseAll();

  /// `Transport` interface alias of `CloseAll`.
  void Shutdown() override { CloseAll(); }

  /// Registered node ids, in registration order.
  std::vector<NodeId> nodes() const;

  /// The link model in use.
  const LinkModel& link_model() const { return options_.link_model; }

  /// The registry this fabric records into (the options-provided one, or the
  /// fabric's own private registry).
  obs::Registry* registry() const { return registry_; }

 private:
  // Keyed by the (src, dst) pair directly: the previous packed-u64 key
  // ((src << 32) | dst) would silently collide links if NodeId ever widened
  // beyond 32 bits. A pair is collision-free for any NodeId width.
  using LinkKey = std::pair<NodeId, NodeId>;
  static LinkKey MakeKey(NodeId src, NodeId dst) { return {src, dst}; }

  /// Charges \p m to the (src, dst) link and per-type counters (mu_ held).
  void ChargeLocked(const Message& m);

  /// A held-back message awaiting redelivery.
  struct Delayed {
    uint64_t due_virtual_us = 0;
    Message msg;
  };

  /// Counts a fault-dropped message (mu_ held). \p cause is a short label
  /// ("loss", "partition", "node_down", "corrupt").
  void CountDropLocked(const char* cause);

  /// Flips one random byte of \p m's would-be frame and replays the
  /// receiver's CRC check (mu_ held). Returns true when the flip was caught
  /// — the caller drops the message; false (flip landed undetectably, which
  /// CRC32C rules out for single-byte flips, or mutated only padding) keeps
  /// the possibly-mutated message in flight.
  bool CorruptFrameLocked(Message* m);

  /// Applies the tampering-node field tamper to \p m when eligible (mu_
  /// held): flips the declared node id inside protocol payloads, leaving the
  /// checksum valid.
  void MaybeTamperLocked(Message* m);

  /// Pops every delayed message with due time <= \p horizon (mu_ held),
  /// returning (inbox, message) pairs in due order; messages whose link went
  /// down while they were in flight are dropped instead.
  std::vector<std::pair<Channel*, Message>> CollectDueLocked(uint64_t horizon);

  /// One in-flight message traversing its (possibly multi-hop) route in
  /// event-driven mode. `path[next_hop]` is the link currently being
  /// crossed; an empty path is the flat single-hop case.
  struct HopEvent {
    Message msg;
    std::vector<uint32_t> path;
    uint32_t next_hop = 0;
    /// Virtual time the current hop started (for per-hop latency).
    uint64_t hop_start_us = 0;
  };

  /// Schedules \p m's first hop \p extra_delay_us past now (mu_ held).
  void EnqueueEventLocked(Message m, uint64_t extra_delay_us);

  /// Per-tier hop latency histogram, created on first use (mu_ held).
  obs::Histogram* HopHistogramLocked(tick::LinkTier tier);

  const Clock* clock_;
  Options options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  /// Registry-backed per-link / per-type message, byte, and event counters.
  TrafficInstruments sent_;
  /// Injected-duplicate traffic only (`net.duplicates.*`), so parity checks
  /// can subtract it from the `transport.sent.*` totals.
  TrafficInstruments dup_sent_;
  obs::Counter* c_dropped_;
  obs::Counter* c_delayed_;
  obs::Counter* c_corrupted_;
  obs::Counter* c_corrupted_frame_;
  obs::Counter* c_corrupted_payload_;
  mutable std::mutex mu_;
  std::map<NodeId, std::unique_ptr<Channel>> inboxes_;
  std::vector<NodeId> order_;
  /// Modelled wire time per link (reporting only; not a registry metric).
  std::map<LinkKey, double> transfer_us_;
  Rng fault_rng_{1};
  uint64_t duplicates_injected_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_delayed_ = 0;
  uint64_t messages_corrupted_ = 0;
  /// Per-(src, dst) next sequence number (1-based).
  std::map<LinkKey, uint32_t> next_seq_;
  /// Directed links currently partitioned.
  std::set<LinkKey> partitions_;
  /// Nodes currently crashed.
  std::set<NodeId> down_;
  /// Nodes currently emitting field-tampered (valid-CRC) payloads.
  std::set<NodeId> tampering_;
  /// Virtual in-flight clock. Inline mode: advances by the link model's base
  /// latency per send, so delayed redelivery is deterministic and wall-clock
  /// free. Event mode: advances to each tick's due time.
  uint64_t virtual_now_us_ = 0;
  /// Held-back messages keyed by due time (stable FIFO among equal keys).
  /// Inline mode only; event mode folds delays into the event queue.
  std::multimap<uint64_t, Message> delayed_;
  /// Central virtual-time event queue (event-driven mode).
  tick::TickQueue<HopEvent> events_;
  obs::Counter* c_sim_ticks_;
  obs::Counter* c_sim_events_;
  /// Lazily-created `sim.hop_latency_us{tier=...}` histograms by tier.
  std::array<obs::Histogram*, tick::kNumLinkTiers> hop_latency_ = {};

 public:
  /// Number of duplicate deliveries injected so far.
  uint64_t duplicates_injected() const;
};

}  // namespace dema::net
