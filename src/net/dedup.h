#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>

#include "common/event.h"

namespace dema::net {

/// \brief Receiver-side duplicate suppression over transport sequence
/// numbers.
///
/// Transports stamp every message with a per-(src, dst) sequence number
/// (`Message::seq`), so a receiver can turn at-least-once delivery into
/// exactly-once processing: the first arrival of a (src, seq) pair passes,
/// every later one is reported as a duplicate. seq 0 marks an unsequenced
/// message (e.g. hand-built in tests) and is never treated as a duplicate.
///
/// Memory per source is bounded: once the highest seq seen from a source
/// advances past `window`, older entries are pruned. A message older than the
/// pruned horizon would be re-flagged only if it arrived more than `window`
/// messages late, far beyond any reorder the fabric injects.
///
/// Sequence numbers are compared with RFC 1982 serial-number arithmetic
/// (`SeqNewer`), so a long-lived stream that wraps past 2^32 keeps advancing
/// its horizon and pruning instead of freezing `max_seq` at the pre-wrap
/// maximum and growing the seen-set without bound.
class SeqDedup {
 public:
  explicit SeqDedup(uint32_t window = 4096) : window_(window) {}

  /// Returns true when (src, seq) was already seen (drop the message);
  /// records the pair otherwise.
  bool IsDuplicate(NodeId src, uint32_t seq);

  /// True when \p a is serially newer than \p b (RFC 1982 over u32): the
  /// half-space within 2^31 of b maps forward, so 1 is newer than
  /// 0xFFFFFFFF across a wrap.
  static bool SeqNewer(uint32_t a, uint32_t b) {
    return static_cast<int32_t>(a - b) > 0;
  }

  /// Total duplicates flagged so far.
  uint64_t duplicates_seen() const { return duplicates_seen_; }

 private:
  struct SrcState {
    uint32_t max_seq = 0;
    std::unordered_set<uint32_t> seen;
  };

  uint32_t window_;
  uint64_t duplicates_seen_ = 0;
  std::map<NodeId, SrcState> per_src_;
};

}  // namespace dema::net
